// Job-granular cluster runtime — the ONLY way a workload runs on a cluster.
//
// Every mapping policy (SM/MNM/SNM/CBM/PTM/ECoST/UB) is a Dispatcher over
// this engine: the dispatcher decides what starts where and with which
// tuning knobs, the engine owns time, contention, energy accounting, and
// (on racked topologies) the fabric.
//
// Time is advanced by an indexed event calendar (sim::EventQueue), not by
// scanning nodes: every running part holds one scheduled completion event,
// re-scheduled in O(log N) whenever its node's environment is re-solved, so
// a step costs O(batch + dirty-node re-solves) regardless of cluster size.
// Simultaneous events fire in a documented, stable order — ascending
// (time, lane, seq) where the lane orders domains at equal times:
//
//   arrivals (lane -2)  <  network completions (-1)  <  node events (node id)
//
// and `seq` is scheduling order within a lane. The pre-calendar engine
// resolved ties by its linear scan's node index order; the calendar keeps
// exactly that order (pinned by the SimultaneousFinishes regression test).
//
// Nodes hold up to `slots_per_node` co-resident jobs. Whenever the running
// set of a node changes, the joint environment is re-solved (through
// NodeEvaluator::co_run_loads) and every resident job's completion rate is
// updated — so a job slowed by a contentious partner speeds back up when
// that partner leaves. Energy integrates the idle-subtracted node power
// between events; unchanged nodes keep their solved environment, so only
// dirty nodes pay for a re-solve.
//
// Placements may span several nodes (a gang): the job's input is split
// evenly across the gang members and the logical job finishes when its last
// part does — this is how serial and multi-node mappings express "one job
// over k nodes". A placement may also claim its nodes exclusively, which
// blocks co-location on them for the placement's lifetime (one-job-per-node
// mappings, reserved capacity).
//
// On a racked topology (sim::Topology with finite link capacities) a part
// that finishes computing drains its cross-node traffic through the fabric
// before the logical job may finish: shuffle bytes flow from every gang
// member to the gang head, and HDFS replication of the part's output flows
// to a deterministic off-rack target. Flows share links max-min fair
// (sim::FlowNet); their completion times are calendar events like any
// other. The default flat topology is ideal (infinite bandwidth): no flow
// is created and the engine's trajectory is bit-identical to the
// pre-topology runtime — the WS1..WS8 goldens pin this.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/wait_queue.hpp"
#include "mapreduce/config.hpp"
#include "mapreduce/node_evaluator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/flow_net.hpp"
#include "sim/topology.hpp"

namespace ecost::core {

/// One node-resident part of a running (possibly multi-node) job.
struct RunningJob {
  QueuedJob job;              ///< the logical job (full input)
  mapreduce::JobSpec part;    ///< what THIS node runs (split input for gangs)
  mapreduce::AppConfig cfg;
  double remaining = 1.0;     ///< fraction of the part's work left
  double est_total_s = 0.0;   ///< part completion time under current conditions
  double placed_s = 0.0;      ///< simulated time this part started
  bool exclusive = false;     ///< this part's placement claimed the whole node
  int spread = 1;             ///< number of nodes the logical job spans
  std::uint64_t part_id = 0;  ///< engine-assigned identity, unique per part

  // Engine-internal calendar tracking (written only by ClusterEngine::run;
  // dispatchers should treat these as opaque). Keeping them inline with the
  // part avoids a part-id hash lookup on every progress refresh.
  sim::EventQueue::EventId ev;  ///< pending completion event
  double deadline_s = std::numeric_limits<double>::infinity();
  double synced_s = 0.0;   ///< last instant `remaining` was materialized
  std::uint64_t app_digest = 0;  ///< joint-environment memo key component
};

/// One dispatcher decision: start `job` on `nodes` with knobs `cfg`.
/// More than one node means the input is split evenly (integer division,
/// like an HDFS block assignment) and every node runs its share as a part
/// of the same logical job. `exclusive` reserves each target node whole —
/// no other job may be placed there until this one finishes.
struct Placement {
  QueuedJob job;
  mapreduce::AppConfig cfg;
  std::vector<int> nodes;
  bool exclusive = false;
};

/// Rack iteration preferences for ClusterView::nodes_rack_major.
enum class RackOrder : std::uint8_t {
  ById,            ///< racks in index order (node-id order overall)
  LeastBusyFirst,  ///< balance: emptiest racks first (spread uplink load)
  MostBusyFirst,   ///< pack: fullest racks first (keep whole racks free)
  MostEmptyNodesFirst,  ///< gang fit: racks with the most empty nodes first
};

/// Read-only cluster state handed to Dispatcher::plan.
class ClusterView {
 public:
  /// Progress-sync hook (raw pointer + context, not std::function — this
  /// fires for every node a dispatcher inspects, which is the hottest
  /// indirect call in a serving run).
  using RefreshFn = void (*)(void*, int);

  int nodes() const { return static_cast<int>(node_jobs_->size()); }
  int slots_per_node() const { return slots_; }
  std::span<const RunningJob> residents(int node) const {
    // Part progress advances lazily (only dirty nodes are re-solved per
    // event), so sync this node to `now` before the dispatcher reads it.
    if (refresh_ != nullptr) refresh_(refresh_ctx_, node);
    return (*node_jobs_)[static_cast<std::size_t>(node)];
  }
  bool empty(int node) const { return residents(node).empty(); }
  /// Free co-residency slots; 0 while an exclusive placement holds the node.
  std::size_t free_slots(int node) const;

  // --- rack locality -------------------------------------------------------
  const sim::Topology& topology() const { return *topo_; }
  int racks() const { return topo_->racks(); }
  int rack_of(int node) const { return topo_->rack_of(node); }
  /// Occupied co-residency slots across one rack.
  std::size_t busy_slots_in_rack(int rack) const;
  /// Every node id, grouped rack-major with racks ordered by `order` (ties
  /// by rack id, nodes by id within a rack). On a single-rack topology this
  /// is always plain node-id order — rack-aware dispatchers degrade to the
  /// flat behavior the goldens pin.
  std::vector<int> nodes_rack_major(RackOrder order) const;
  /// Same ordering written into `out` (cleared first) — dispatchers that
  /// plan every batch reuse one buffer instead of allocating per call.
  void nodes_rack_major(RackOrder order, std::vector<int>& out) const;

 private:
  friend class ClusterEngine;
  ClusterView(const std::vector<std::vector<RunningJob>>* node_jobs, int slots,
              const sim::Topology* topo, RefreshFn refresh = nullptr,
              void* refresh_ctx = nullptr)
      : node_jobs_(node_jobs),
        slots_(slots),
        topo_(topo),
        refresh_(refresh),
        refresh_ctx_(refresh_ctx) {}

  const std::vector<std::vector<RunningJob>>* node_jobs_;
  int slots_;
  const sim::Topology* topo_;
  RefreshFn refresh_ = nullptr;
  void* refresh_ctx_ = nullptr;
  /// Rack-sort scratch for nodes_rack_major (the engine is single-threaded
  /// per run; dispatchers call through one view at a time).
  mutable std::vector<int> rack_ids_;
  mutable std::vector<long long> rack_key_;
};

/// Policy hook: decides what runs where.
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Called at every scheduling opportunity (start of time, any membership
  /// change, any arrival landing while capacity is free). Returns the
  /// placements to apply now; they must fit the capacity visible in `view`
  /// (the engine validates). An empty vector means "nothing to start".
  virtual std::vector<Placement> plan(const ClusterView& view,
                                      double now_s) = 0;

  /// Called after membership changes (and while a node has spare capacity);
  /// may re-tune a still-running part — e.g. expand a survivor's task waves
  /// onto the cores its finished partner freed. Return nullopt to keep the
  /// current configuration.
  virtual std::optional<mapreduce::AppConfig> retune(
      const RunningJob& running, std::span<const RunningJob> others) {
    (void)running;
    (void)others;
    return std::nullopt;
  }

  /// Time of the next job arrival after `now_s`, or +infinity when no more
  /// work will ever arrive. The engine idles forward to this time when the
  /// cluster drains, and re-plans mid-flight when an arrival lands.
  virtual double next_arrival_s(double now_s) const {
    (void)now_s;
    return std::numeric_limits<double>::infinity();
  }

  /// Attaches observability sinks. `trace` may be null (disabled); `pid`
  /// is the recorder track group this dispatcher's events belong to —
  /// normally the same track the engine run writes to. Dispatchers emit
  /// decision instants on the scheduler lane (tid 0).
  void set_obs(obs::TraceRecorder* trace, std::uint32_t pid,
               obs::MetricsRegistry* metrics = nullptr) {
    trace_ = trace;
    obs_pid_ = pid;
    if (metrics != nullptr) metrics_ = metrics;
  }

 protected:
  obs::TraceRecorder* trace_ = nullptr;   ///< null = tracing off
  std::uint32_t obs_pid_ = 0;
  obs::MetricsRegistry* metrics_ = &obs::MetricsRegistry::global();
};

/// Structured record of one applied placement — the engine-level decision
/// telemetry (typed knobs, not a display string).
struct PlacementRecord {
  double t_s = 0.0;
  std::uint64_t job_id = 0;
  std::vector<int> nodes;
  mapreduce::AppConfig cfg;
  bool exclusive = false;

  /// "t=42s job 3 -> node 0+1 [2.4GHz/128MB/m8] exclusive" — for logs.
  std::string format() const;
};

struct ClusterOutcome {
  double makespan_s = 0.0;
  double energy_dyn_j = 0.0;
  std::vector<std::pair<std::uint64_t, double>> finish_times;  // (job id, t)
  std::vector<PlacementRecord> placements;  ///< every decision, in time order
  std::uint64_t events = 0;   ///< calendar events fired (throughput metric)
  /// Max-min rate recomputations the flow net performed (one per membership
  /// epoch — the batched-recompute contract); 0 on an ideal topology.
  std::uint64_t net_recomputes = 0;
  /// Per-link fabric usage; empty on an ideal (flat) topology.
  std::vector<sim::LinkStats> links;

  double edp() const { return makespan_s * energy_dyn_j; }
};

class ClusterEngine {
 public:
  /// Flat ideal topology of `nodes` — the paper-testbed shape.
  ClusterEngine(const mapreduce::NodeEvaluator& eval, int nodes,
                int slots_per_node = 2);

  /// Explicit topology; `topo.nodes()` is the cluster size. A non-ideal
  /// topology turns on the shuffle/replication flow model.
  ClusterEngine(const mapreduce::NodeEvaluator& eval, sim::Topology topo,
                int slots_per_node = 2);

  /// Attaches a trace sink. `pid` is the recorder track group the run
  /// writes to (one per engine run — see TraceRecorder::track); the engine
  /// names lane 0 "scheduler", lane n+1 "node n", and — on a racked
  /// topology — lane nodes+1+r "rack r fabric" (flow spans + uplink
  /// utilization counters). Null disables: every emission site is behind a
  /// single pointer test.
  void set_obs(obs::TraceRecorder* trace, std::uint32_t pid);

  /// Registry for the engine.* counters (default: the process global).
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Runs until every node drains and the dispatcher stops producing work.
  /// The attached trace/metrics sinks are also handed to `dispatcher`
  /// (Dispatcher::set_obs) so decision events land on the same track.
  ClusterOutcome run(Dispatcher& dispatcher);

  const sim::Topology& topology() const { return topo_; }

 private:
  const mapreduce::NodeEvaluator& eval_;
  sim::Topology topo_;
  int nodes_;
  int slots_;
  obs::TraceRecorder* trace_ = nullptr;
  std::uint32_t pid_ = 0;
  obs::MetricsRegistry* metrics_ = &obs::MetricsRegistry::global();
};

}  // namespace ecost::core
