#include "core/mapping_policies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <tuple>
#include <utility>

#include "core/cluster_engine.hpp"
#include "core/dispatchers/ecost.hpp"
#include "core/dispatchers/pair_gang.hpp"
#include "core/dispatchers/spread.hpp"
#include "core/profiling.hpp"
#include "tuning/brute_force.hpp"
#include "tuning/matching.hpp"
#include "util/error.hpp"

namespace ecost::core {

using dispatchers::ArrivingJob;
using dispatchers::EcostDispatcher;
using dispatchers::PairEntry;
using dispatchers::PairGangDispatcher;
using dispatchers::SpreadDispatcher;
using dispatchers::SpreadEntry;
using mapreduce::AppConfig;
using mapreduce::JobSpec;
using mapreduce::PairConfig;

namespace {

const AppConfig kDefaultCfg{sim::FreqLevel::F2_4, 128, 8};  // Hadoop defaults
const AppConfig kCbmCfg{sim::FreqLevel::F2_4, 128, 4};

QueuedJob bare_job(std::size_t index, const JobSpec& spec) {
  QueuedJob qj;
  qj.id = index;
  qj.info.job = spec;
  return qj;
}

}  // namespace

MappingPolicies::MappingPolicies(const mapreduce::NodeEvaluator& eval,
                                 std::vector<JobSpec> jobs, int nodes)
    : MappingPolicies(eval, std::move(jobs), sim::Topology::flat(nodes)) {}

MappingPolicies::MappingPolicies(const mapreduce::NodeEvaluator& eval,
                                 std::vector<JobSpec> jobs,
                                 sim::Topology topo)
    : eval_(eval),
      cache_(eval_),
      jobs_(std::move(jobs)),
      topo_(std::move(topo)),
      nodes_(topo_.nodes()) {
  ECOST_REQUIRE(nodes_ >= 1, "need at least one node");
  ECOST_REQUIRE(!jobs_.empty(), "need at least one job");
}

void MappingPolicies::set_obs(obs::TraceRecorder* trace,
                              obs::MetricsRegistry* metrics,
                              std::string track_prefix) {
  trace_ = trace;
  obs_metrics_ = metrics;
  track_prefix_ = std::move(track_prefix);
}

ClusterOutcome MappingPolicies::run_policy(Dispatcher& d,
                                           const char* policy) const {
  ClusterEngine engine(eval_, topo_, 2);
  if (trace_ != nullptr) {
    engine.set_obs(trace_, trace_->track(track_prefix_ + policy));
  }
  engine.set_metrics(obs_metrics_);
  return engine.run(d);
}

PolicyResult MappingPolicies::serial_mapping() const {
  std::vector<SpreadEntry> entries;
  entries.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    entries.push_back(SpreadEntry{bare_job(i, jobs_[i]), kDefaultCfg});
  }
  SpreadDispatcher d(std::move(entries), nodes_);
  const ClusterOutcome oc = run_policy(d, "SM");
  return {"SM", oc.makespan_s, oc.energy_dyn_j, oc.events, oc.net_recomputes};
}

PolicyResult MappingPolicies::multi_node(int parallel_jobs) const {
  ECOST_REQUIRE(parallel_jobs >= 1 && parallel_jobs <= nodes_,
                "parallel job count exceeds nodes");
  const int group_nodes = nodes_ / parallel_jobs;
  std::vector<SpreadEntry> entries;
  entries.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    entries.push_back(SpreadEntry{bare_job(i, jobs_[i]), kDefaultCfg});
  }
  SpreadDispatcher d(std::move(entries), group_nodes, parallel_jobs);
  const char* name = parallel_jobs == 2 ? "MNM1" : "MNM2";
  const ClusterOutcome oc = run_policy(d, name);
  return {name, oc.makespan_s, oc.energy_dyn_j, oc.events, oc.net_recomputes};
}

PolicyResult MappingPolicies::single_node() const {
  std::vector<SpreadEntry> entries;
  entries.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    entries.push_back(SpreadEntry{bare_job(i, jobs_[i]), kDefaultCfg});
  }
  SpreadDispatcher d(std::move(entries), 1);
  const ClusterOutcome oc = run_policy(d, "SNM");
  return {"SNM", oc.makespan_s, oc.energy_dyn_j, oc.events, oc.net_recomputes};
}

PolicyResult MappingPolicies::core_balance() const {
  std::vector<PairEntry> entries;
  for (std::size_t i = 0; i < jobs_.size(); i += 2) {
    PairEntry e;
    e.a = bare_job(i, jobs_[i]);
    e.cfg_a = kCbmCfg;
    if (i + 1 < jobs_.size()) {
      e.b = bare_job(i + 1, jobs_[i + 1]);
      e.cfg_b = kCbmCfg;
    }
    entries.push_back(std::move(e));
  }
  PairGangDispatcher d(std::move(entries), eval_.spec().cores);
  const ClusterOutcome oc = run_policy(d, "CBM");
  return {"CBM", oc.makespan_s, oc.energy_dyn_j, oc.events, oc.net_recomputes};
}

PolicyResult MappingPolicies::predict_tuning(const TrainingData& td) const {
  std::vector<SpreadEntry> entries;
  entries.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobSpec& job = jobs_[i];
    ProfilingOptions popts;
    popts.seed = 977 + i;
    const auto fv = profile_application(eval_, job.app, popts);
    const auto cls = td.classifier.classify(fv);

    // Nearest (class, size) entry of the solo database.
    const AppConfig* best_cfg = &kDefaultCfg;
    double best_d = std::numeric_limits<double>::infinity();
    for (const auto& [key, cfg] : td.solo_db) {
      if (key.cls != cls) continue;
      const double d = std::abs(std::log(std::max(key.size_gib, 1e-6) /
                                         std::max(job.input_gib(), 1e-6)));
      if (d < best_d) {
        best_d = d;
        best_cfg = &cfg;
      }
    }
    entries.push_back(SpreadEntry{bare_job(i, job), *best_cfg});
  }
  SpreadDispatcher d(std::move(entries), 1);
  const ClusterOutcome oc = run_policy(d, "PTM");
  return {"PTM", oc.makespan_s, oc.energy_dyn_j, oc.events, oc.net_recomputes};
}

PolicyResult MappingPolicies::ecost(const TrainingData& td,
                                    const SelfTuner& stp) const {
  std::vector<ArrivingJob> queued;
  queued.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    ArrivingJob aj;
    aj.arrival_s = 0.0;  // batch study: the whole stream is already waiting
    aj.job.id = i;
    aj.job.info.job = jobs_[i];
    ProfilingOptions popts;
    popts.seed = 1303 + i;
    aj.job.info.features = profile_application(eval_, jobs_[i].app, popts);
    aj.job.info.cls = td.classifier.classify(aj.job.info.features);
    aj.job.est_duration_s =
        cache_.run_solo(jobs_[i], kDefaultCfg).makespan_s;
    queued.push_back(std::move(aj));
  }
  EcostDispatcher dispatcher(eval_, td, stp, std::move(queued));
  const ClusterOutcome oc = run_policy(dispatcher, "ECoST");
  return {"ECoST", oc.makespan_s, oc.energy_dyn_j, oc.events, oc.net_recomputes};
}

PolicyResult MappingPolicies::upper_bound() const {
  const std::size_t n = jobs_.size();
  ECOST_REQUIRE(n % 2 == 0, "UB matching needs an even job count");
  const tuning::BruteForce bf(cache_);

  // COLAO oracle per unique (app, size) pair — scenarios repeat apps, so
  // cache aggressively. `swapped` reports whether (i, j) had to be flipped
  // to match the canonical key order, so the caller can assign cfg.first /
  // cfg.second to the right job.
  using PairDesc = std::tuple<std::string, double, std::string, double>;
  std::map<PairDesc, tuning::PairOutcome> colao_cache;
  auto colao_of = [&](std::size_t i, std::size_t j,
                      bool* swapped = nullptr) -> tuning::PairOutcome& {
    PairDesc key{jobs_[i].app.abbrev, jobs_[i].input_gib(),
                 jobs_[j].app.abbrev, jobs_[j].input_gib()};
    PairDesc rkey{std::get<2>(key), std::get<3>(key), std::get<0>(key),
                  std::get<1>(key)};
    if (rkey < key) key = rkey;
    const bool i_is_first = jobs_[i].app.abbrev == std::get<0>(key) &&
                            jobs_[i].input_gib() == std::get<1>(key);
    if (swapped != nullptr) *swapped = !i_is_first;
    auto it = colao_cache.find(key);
    if (it == colao_cache.end()) {
      const JobSpec& a = i_is_first ? jobs_[i] : jobs_[j];
      const JobSpec& b = i_is_first ? jobs_[j] : jobs_[i];
      it = colao_cache.emplace(key, bf.colao(a, b)).first;
    }
    return it->second;
  };

  // Exact DP up to its 20-item ceiling; greedy beyond (scale studies pair
  // hundreds of jobs, where the cached COLAO costs make greedy cheap).
  const auto cost_fn = [&](std::size_t i, std::size_t j) {
    return colao_of(i, j).edp;
  };
  const auto pairs = n <= 20 ? tuning::min_cost_perfect_matching(n, cost_fn)
                             : tuning::greedy_min_cost_matching(n, cost_fn);

  // Longest pair first, then gang-schedule pairs onto nodes.
  std::vector<std::pair<double, PairEntry>> timed;
  timed.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    bool swapped = false;
    const tuning::PairOutcome& po = colao_of(a, b, &swapped);
    PairEntry e;
    e.a = bare_job(a, jobs_[a]);
    e.b = bare_job(b, jobs_[b]);
    e.cfg_a = swapped ? po.cfg.second : po.cfg.first;
    e.cfg_b = swapped ? po.cfg.first : po.cfg.second;
    timed.emplace_back(po.result.makespan_s, std::move(e));
  }
  std::stable_sort(timed.begin(), timed.end(),
                   [](const auto& x, const auto& y) {
                     return x.first > y.first;
                   });
  std::vector<PairEntry> entries;
  entries.reserve(timed.size());
  for (auto& [t, e] : timed) entries.push_back(std::move(e));

  PairGangDispatcher d(std::move(entries), eval_.spec().cores);
  const ClusterOutcome oc = run_policy(d, "UB");
  return {"UB", oc.makespan_s, oc.energy_dyn_j, oc.events, oc.net_recomputes};
}

}  // namespace ecost::core
