#include "core/mapping_policies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <tuple>

#include "core/cluster_engine.hpp"
#include "core/ecost_dispatcher.hpp"
#include "core/profiling.hpp"
#include "tuning/brute_force.hpp"
#include "util/error.hpp"

namespace ecost::core {

using mapreduce::AppConfig;
using mapreduce::JobSpec;
using mapreduce::PairConfig;
using mapreduce::RunResult;

namespace {

const AppConfig kDefaultCfg{sim::FreqLevel::F2_4, 128, 8};  // Hadoop defaults
const AppConfig kCbmCfg{sim::FreqLevel::F2_4, 128, 4};

/// Greedy list scheduling of (duration, energy) items onto `slots` machines:
/// returns {makespan, total energy}.
struct Scheduled {
  double makespan_s = 0.0;
  double energy_j = 0.0;
};

Scheduled list_schedule(std::vector<std::pair<double, double>> items,
                        int slots) {
  ECOST_REQUIRE(slots >= 1, "need at least one slot");
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int s = 0; s < slots; ++s) free_at.push(0.0);
  Scheduled out;
  for (const auto& [dur, energy] : items) {
    const double start = free_at.top();
    free_at.pop();
    const double end = start + dur;
    free_at.push(end);
    out.makespan_s = std::max(out.makespan_s, end);
    out.energy_j += energy;
  }
  return out;
}

}  // namespace

MappingPolicies::MappingPolicies(const mapreduce::NodeEvaluator& eval,
                                 std::vector<JobSpec> jobs, int nodes)
    : eval_(eval), cache_(eval_), jobs_(std::move(jobs)), nodes_(nodes) {
  ECOST_REQUIRE(nodes >= 1, "need at least one node");
  ECOST_REQUIRE(!jobs_.empty(), "need at least one job");
}

RunResult MappingPolicies::run_spread(const JobSpec& job, int k,
                                      const AppConfig& cfg) const {
  ECOST_REQUIRE(k >= 1 && k <= nodes_, "spread width out of range");
  JobSpec per_node = job;
  per_node.input_bytes = job.input_bytes / static_cast<std::uint64_t>(k);
  RunResult rr = cache_.run_solo(per_node, cfg);
  rr.energy_dyn_j *= static_cast<double>(k);  // k identical nodes
  rr.energy_total_j *= static_cast<double>(k);
  return rr;
}

PolicyResult MappingPolicies::serial_mapping() const {
  PolicyResult out{"SM"};
  for (const JobSpec& job : jobs_) {
    const RunResult rr = run_spread(job, nodes_, kDefaultCfg);
    out.makespan_s += rr.makespan_s;
    out.energy_dyn_j += rr.energy_dyn_j;
  }
  return out;
}

PolicyResult MappingPolicies::multi_node(int parallel_jobs) const {
  ECOST_REQUIRE(parallel_jobs >= 1 && parallel_jobs <= nodes_,
                "parallel job count exceeds nodes");
  const int group_nodes = nodes_ / parallel_jobs;
  std::vector<std::pair<double, double>> items;
  items.reserve(jobs_.size());
  for (const JobSpec& job : jobs_) {
    const RunResult rr = run_spread(job, group_nodes, kDefaultCfg);
    items.emplace_back(rr.makespan_s, rr.energy_dyn_j);
  }
  const Scheduled s = list_schedule(std::move(items), parallel_jobs);
  return {parallel_jobs == 2 ? "MNM1" : "MNM2", s.makespan_s, s.energy_j};
}

PolicyResult MappingPolicies::single_node() const {
  std::vector<std::pair<double, double>> items;
  items.reserve(jobs_.size());
  for (const JobSpec& job : jobs_) {
    const RunResult rr = cache_.run_solo(job, kDefaultCfg);
    items.emplace_back(rr.makespan_s, rr.energy_dyn_j);
  }
  const Scheduled s = list_schedule(std::move(items), nodes_);
  return {"SNM", s.makespan_s, s.energy_j};
}

PolicyResult MappingPolicies::core_balance() const {
  std::vector<std::pair<double, double>> items;
  for (std::size_t i = 0; i < jobs_.size(); i += 2) {
    if (i + 1 < jobs_.size()) {
      const RunResult rr =
          cache_.run_pair(jobs_[i], kCbmCfg, jobs_[i + 1], kCbmCfg);
      items.emplace_back(rr.makespan_s, rr.energy_dyn_j);
    } else {
      const RunResult rr = cache_.run_solo(jobs_[i], kCbmCfg);
      items.emplace_back(rr.makespan_s, rr.energy_dyn_j);
    }
  }
  const Scheduled s = list_schedule(std::move(items), nodes_);
  return {"CBM", s.makespan_s, s.energy_j};
}

PolicyResult MappingPolicies::predict_tuning(const TrainingData& td) const {
  std::vector<std::pair<double, double>> items;
  for (const JobSpec& job : jobs_) {
    ProfilingOptions popts;
    popts.seed = 977 + items.size();
    const auto fv = profile_application(eval_, job.app, popts);
    const auto cls = td.classifier.classify(fv);

    // Nearest (class, size) entry of the solo database.
    const AppConfig* best_cfg = &kDefaultCfg;
    double best_d = std::numeric_limits<double>::infinity();
    for (const auto& [key, cfg] : td.solo_db) {
      if (key.cls != cls) continue;
      const double d = std::abs(std::log(std::max(key.size_gib, 1e-6) /
                                         std::max(job.input_gib(), 1e-6)));
      if (d < best_d) {
        best_d = d;
        best_cfg = &cfg;
      }
    }
    const RunResult rr = cache_.run_solo(job, *best_cfg);
    items.emplace_back(rr.makespan_s, rr.energy_dyn_j);
  }
  const Scheduled s = list_schedule(std::move(items), nodes_);
  return {"PTM", s.makespan_s, s.energy_j};
}

PolicyResult MappingPolicies::ecost(const TrainingData& td,
                                    const SelfTuner& stp) const {
  std::vector<ArrivingJob> queued;
  queued.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    ArrivingJob aj;
    aj.arrival_s = 0.0;  // batch study: the whole stream is already waiting
    aj.job.id = i;
    aj.job.info.job = jobs_[i];
    ProfilingOptions popts;
    popts.seed = 1303 + i;
    aj.job.info.features = profile_application(eval_, jobs_[i].app, popts);
    aj.job.info.cls = td.classifier.classify(aj.job.info.features);
    aj.job.est_duration_s =
        cache_.run_solo(jobs_[i], kDefaultCfg).makespan_s;
    queued.push_back(std::move(aj));
  }
  EcostDispatcher dispatcher(eval_, td, stp, std::move(queued));
  ClusterEngine engine(eval_, nodes_, 2);
  const ClusterOutcome oc = engine.run(dispatcher);
  return {"ECoST", oc.makespan_s, oc.energy_dyn_j};
}

PolicyResult MappingPolicies::upper_bound() const {
  const std::size_t n = jobs_.size();
  ECOST_REQUIRE(n % 2 == 0, "UB matching needs an even job count");
  ECOST_REQUIRE(n <= 20, "bitmask matching limited to 20 jobs");
  const tuning::BruteForce bf(cache_);

  // COLAO oracle per unique (app, size) pair — scenarios repeat apps, so
  // cache aggressively.
  using PairDesc = std::tuple<std::string, double, std::string, double>;
  std::map<PairDesc, tuning::PairOutcome> cache;
  auto colao_of = [&](std::size_t i, std::size_t j) -> tuning::PairOutcome& {
    PairDesc key{jobs_[i].app.abbrev, jobs_[i].input_gib(),
                 jobs_[j].app.abbrev, jobs_[j].input_gib()};
    PairDesc rkey{std::get<2>(key), std::get<3>(key), std::get<0>(key),
                  std::get<1>(key)};
    if (rkey < key) key = rkey;
    auto it = cache.find(key);
    if (it == cache.end()) {
      const JobSpec& a =
          jobs_[i].app.abbrev == std::get<0>(key) ? jobs_[i] : jobs_[j];
      const JobSpec& b =
          jobs_[i].app.abbrev == std::get<0>(key) ? jobs_[j] : jobs_[i];
      it = cache.emplace(key, bf.colao(a, b)).first;
    }
    return it->second;
  };

  // Exact minimum-cost perfect matching by DP over subsets: always pair the
  // lowest unset bit with some other free job.
  const std::size_t full = (std::size_t{1} << n) - 1;
  std::vector<double> dp(full + 1,
                         std::numeric_limits<double>::infinity());
  std::vector<std::pair<int, int>> choice(full + 1, {-1, -1});
  dp[0] = 0.0;
  for (std::size_t mask = 0; mask < full; ++mask) {
    if (!std::isfinite(dp[mask])) continue;
    int first = -1;
    for (std::size_t b = 0; b < n; ++b) {
      if (!(mask & (std::size_t{1} << b))) {
        first = static_cast<int>(b);
        break;
      }
    }
    for (std::size_t b = static_cast<std::size_t>(first) + 1; b < n; ++b) {
      if (mask & (std::size_t{1} << b)) continue;
      const std::size_t next = mask | (std::size_t{1} << first) |
                               (std::size_t{1} << b);
      const double cost =
          dp[mask] +
          colao_of(static_cast<std::size_t>(first), b).edp;
      if (cost < dp[next]) {
        dp[next] = cost;
        choice[next] = {first, static_cast<int>(b)};
      }
    }
  }

  // Recover the pairs and schedule them (longest pair first).
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::size_t mask = full;
  while (mask != 0) {
    const auto [a, b] = choice[mask];
    ECOST_CHECK(a >= 0 && b >= 0, "matching reconstruction failed");
    pairs.emplace_back(static_cast<std::size_t>(a),
                       static_cast<std::size_t>(b));
    mask &= ~(std::size_t{1} << static_cast<std::size_t>(a));
    mask &= ~(std::size_t{1} << static_cast<std::size_t>(b));
  }

  std::vector<std::pair<double, double>> items;
  for (const auto& [a, b] : pairs) {
    const tuning::PairOutcome& po = colao_of(a, b);
    items.emplace_back(po.result.makespan_s, po.result.energy_dyn_j);
  }
  std::sort(items.begin(), items.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  const Scheduled s = list_schedule(std::move(items), nodes_);
  return {"UB", s.makespan_s, s.energy_j};
}

}  // namespace ecost::core
