#include "core/config_db.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace ecost::core {

using mapreduce::PairConfig;

PairKey PairKey::canonical(PairSide a, PairSide b, bool* swapped) {
  const bool swap = b < a;
  if (swapped) *swapped = swap;
  return swap ? PairKey{b, a} : PairKey{a, b};
}

void ConfigDatabase::record(PairSide a, PairSide b, const PairConfig& cfg,
                            double edp) {
  ECOST_REQUIRE(edp >= 0.0, "negative EDP");
  bool swapped = false;
  const PairKey key = PairKey::canonical(a, b, &swapped);
  const PairConfig canon = swapped ? PairConfig{cfg.second, cfg.first} : cfg;
  auto it = entries_.find(key);
  if (it == entries_.end() || edp < it->second.edp) {
    entries_[key] = Entry{canon, edp};
  }
}

std::optional<ConfigDatabase::Entry> ConfigDatabase::lookup(
    PairSide a, PairSide b) const {
  bool swapped = false;
  const PairKey key = PairKey::canonical(a, b, &swapped);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  Entry e = it->second;
  if (swapped) std::swap(e.cfg.first, e.cfg.second);
  return e;
}

std::optional<ConfigDatabase::Entry> ConfigDatabase::lookup_nearest(
    PairSide a, PairSide b) const {
  if (auto exact = lookup(a, b)) return exact;

  bool swapped = false;
  const PairKey want = PairKey::canonical(a, b, &swapped);
  double best_dist = std::numeric_limits<double>::infinity();
  const Entry* best = nullptr;
  for (const auto& [key, entry] : entries_) {
    if (key.first.cls != want.first.cls || key.second.cls != want.second.cls) {
      continue;
    }
    auto dist1 = [](double x, double y) {
      return std::abs(std::log(std::max(x, 1e-6) / std::max(y, 1e-6)));
    };
    const double d = dist1(key.first.size_gib, want.first.size_gib) +
                     dist1(key.second.size_gib, want.second.size_gib);
    if (d < best_dist) {
      best_dist = d;
      best = &entry;
    }
  }
  if (!best) return std::nullopt;
  Entry e = *best;
  if (swapped) std::swap(e.cfg.first, e.cfg.second);
  return e;
}

}  // namespace ecost::core
