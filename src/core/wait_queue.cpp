#include "core/wait_queue.hpp"

#include "util/error.hpp"

namespace ecost::core {

void WaitQueue::push(QueuedJob job) {
  ECOST_REQUIRE(job.est_duration_s >= 0.0, "negative duration estimate");
  jobs_.push_back(std::move(job));
}

std::optional<mapreduce::AppClass> WaitQueue::head_class() const {
  if (jobs_.empty()) return std::nullopt;
  return jobs_.front().info.cls;
}

std::optional<QueuedJob> WaitQueue::pop_head() {
  if (jobs_.empty()) return std::nullopt;
  QueuedJob job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

std::optional<QueuedJob> WaitQueue::pop_for(mapreduce::AppClass /*unused*/,
                                            double co_runner_remaining_s,
                                            const PairingPolicy& policy) {
  if (jobs_.empty()) return std::nullopt;

  std::size_t best_idx = 0;  // head is always eligible
  int best_rank = policy.rank(jobs_.front().info.cls);
  for (std::size_t i = 1; i < jobs_.size(); ++i) {
    if (jobs_[i].est_duration_s > co_runner_remaining_s) continue;
    const int r = policy.rank(jobs_[i].info.cls);
    if (r < best_rank) {
      best_rank = r;
      best_idx = i;
    }
  }
  QueuedJob job = std::move(jobs_[best_idx]);
  jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(best_idx));
  return job;
}

}  // namespace ecost::core
