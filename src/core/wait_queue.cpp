#include "core/wait_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ecost::core {

void WaitQueue::push(QueuedJob job) {
  ECOST_REQUIRE(job.est_duration_s >= 0.0, "negative duration estimate");
  if (jobs_.empty()) {
    sorted_ = true;  // an emptied queue is trivially sorted again
  } else if (job.submit_s < jobs_.back().submit_s) {
    sorted_ = false;
  }
  jobs_.push_back(std::move(job));
}

std::optional<mapreduce::AppClass> WaitQueue::head_class() const {
  if (jobs_.empty()) return std::nullopt;
  return jobs_.front().info.cls;
}

std::optional<QueuedJob> WaitQueue::pop_head() {
  if (jobs_.empty()) return std::nullopt;
  QueuedJob job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

std::optional<double> WaitQueue::oldest_submit_s() const {
  if (jobs_.empty()) return std::nullopt;
  if (sorted_) return jobs_.front().submit_s;
  double oldest = jobs_.front().submit_s;
  for (const QueuedJob& j : jobs_) oldest = std::min(oldest, j.submit_s);
  return oldest;
}

std::optional<QueuedJob> WaitQueue::pop_overdue(double now_s,
                                                double deadline_s) {
  if (jobs_.empty()) return std::nullopt;
  // When sorted, the front is the earliest submit — and a strict-< scan
  // would land on the first occurrence of the minimum, i.e. the front, so
  // the fast path pops the exact job the scan would.
  std::size_t best_idx = 0;
  if (!sorted_) {
    for (std::size_t i = 1; i < jobs_.size(); ++i) {
      if (jobs_[i].submit_s < jobs_[best_idx].submit_s) best_idx = i;
    }
  }
  // A hair of slack absorbs the engine's event-time rounding: a wake-up
  // scheduled at exactly submit + deadline must count as overdue.
  if (now_s - jobs_[best_idx].submit_s < deadline_s - 1e-9) {
    return std::nullopt;
  }
  QueuedJob job = std::move(jobs_[best_idx]);
  jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(best_idx));
  return job;
}

std::optional<QueuedJob> WaitQueue::pop_for(mapreduce::AppClass /*unused*/,
                                            double co_runner_remaining_s,
                                            const PairingPolicy& policy) {
  if (jobs_.empty()) return std::nullopt;

  std::size_t best_idx = 0;  // head is always eligible
  int best_rank = policy.rank(jobs_.front().info.cls);
  for (std::size_t i = 1; i < jobs_.size(); ++i) {
    if (jobs_[i].est_duration_s > co_runner_remaining_s) continue;
    const int r = policy.rank(jobs_[i].info.cls);
    if (r < best_rank) {
      best_rank = r;
      best_idx = i;
    }
  }
  QueuedJob job = std::move(jobs_[best_idx]);
  jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(best_idx));
  return job;
}

}  // namespace ecost::core
