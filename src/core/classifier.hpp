// Incoming-application analyzer/classifier (Figure 4, Step 1): assigns an
// unknown application to one of the four classes from its measured feature
// vector. Two interchangeable mechanisms are provided:
//  * k-NN against the training feature matrix (the default — the "cluster
//    algorithm" of section 6.4), and
//  * the paper's threshold rules on CPUuser / CPUiowait / LLC MPKI relative
//    to training averages (section 3.2's narrative description).
#pragma once

#include <vector>

#include "mapreduce/app_profile.hpp"
#include "ml/knn.hpp"
#include "perfmon/feature_vector.hpp"

namespace ecost::core {

class AppClassifier {
 public:
  /// Extracts the 7 selected features (section 3.2) as an ML row.
  static std::vector<double> select(const perfmon::FeatureVector& fv);

  /// Trains on profiled feature vectors of the known applications.
  void fit(const std::vector<perfmon::FeatureVector>& features,
           const std::vector<mapreduce::AppClass>& labels);

  bool fitted() const { return knn_.fitted(); }

  /// k-NN classification (default mechanism).
  mapreduce::AppClass classify(const perfmon::FeatureVector& fv) const;

  /// Threshold-rule classification relative to training averages.
  mapreduce::AppClass classify_rules(const perfmon::FeatureVector& fv) const;

 private:
  ml::KnnClassifier knn_{3};
  // Training means used by the rule-based path.
  double avg_user_ = 0.0;
  double avg_iowait_ = 0.0;
  double avg_mpki_ = 0.0;
};

}  // namespace ecost::core
