// Real implementations of the paper's micro-kernels for the functional
// engine: WordCount, Grep, and (Tera)Sort — the workloads whose resource
// signatures the simulator profiles (src/workloads) model.
#pragma once

#include <string>

#include "mrexec/engine.hpp"

namespace ecost::mrexec {

/// WordCount: tokenizes on non-alphanumerics, counts occurrences. The
/// mapper pre-aggregates per split (a combiner) to cut shuffle volume.
MapperFactory wordcount_mapper();
ReducerFactory sum_reducer();

/// Grep: emits every record containing `needle` (substring match), keyed by
/// the record so output is deterministic.
MapperFactory grep_mapper(std::string needle);
ReducerFactory identity_reducer();

/// Sort: identity map keyed by the record; combined with a range
/// partitioner the concatenated reduce output is globally sorted.
MapperFactory sort_mapper();

/// Runs a complete sort job (sampling + range partitioning) and returns the
/// globally sorted records.
std::vector<std::string> run_sort(const Engine& engine,
                                  const std::vector<std::string>& records,
                                  JobStats* stats = nullptr);

/// Runs wordcount and returns (word, count) pairs, sorted by word.
std::vector<std::pair<std::string, std::size_t>> run_wordcount(
    const Engine& engine, const std::vector<std::string>& lines,
    JobStats* stats = nullptr);

}  // namespace ecost::mrexec
