#include "mrexec/engine.hpp"

#include <algorithm>
#include <atomic>

#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace ecost::mrexec {

std::size_t hash_partition(const std::string& key, std::size_t partitions) {
  ECOST_REQUIRE(partitions > 0, "need at least one partition");
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h % partitions);
}

Partitioner make_range_partitioner(std::vector<std::string> sample,
                                   std::size_t partitions) {
  ECOST_REQUIRE(partitions > 0, "need at least one partition");
  std::sort(sample.begin(), sample.end());
  // Boundaries at sample quantiles: partition p covers keys < boundary[p].
  std::vector<std::string> bounds;
  for (std::size_t p = 1; p < partitions; ++p) {
    if (sample.empty()) break;
    const std::size_t idx =
        std::min(sample.size() - 1, p * sample.size() / partitions);
    bounds.push_back(sample[idx]);
  }
  return [bounds, partitions](const std::string& key,
                              std::size_t parts) -> std::size_t {
    ECOST_REQUIRE(parts == partitions,
                  "range partitioner built for a different partition count");
    const auto it = std::upper_bound(bounds.begin(), bounds.end(), key);
    return static_cast<std::size_t>(it - bounds.begin());
  };
}

void JobConfig::validate() const {
  ECOST_REQUIRE(map_parallelism >= 1, "need at least one map worker");
  ECOST_REQUIRE(reduce_tasks >= 1, "need at least one reduce task");
  ECOST_REQUIRE(records_per_split >= 1, "splits need at least one record");
}

Engine::Engine(JobConfig cfg) : cfg_(std::move(cfg)) { cfg_.validate(); }

std::vector<KV> Engine::run(const std::vector<std::string>& records,
                            const MapperFactory& mapper,
                            const ReducerFactory& reducer,
                            JobStats* stats) const {
  ECOST_REQUIRE(static_cast<bool>(mapper), "null mapper factory");
  ECOST_REQUIRE(static_cast<bool>(reducer), "null reducer factory");
  const Partitioner partition =
      cfg_.partitioner ? cfg_.partitioner : hash_partition;

  // --- map phase -----------------------------------------------------------
  const std::size_t n_splits =
      records.empty()
          ? 0
          : (records.size() + cfg_.records_per_split - 1) /
                cfg_.records_per_split;
  std::vector<std::vector<KV>> map_out(n_splits);
  parallel_for(
      n_splits,
      [&](std::size_t s) {
        const std::size_t lo = s * cfg_.records_per_split;
        const std::size_t hi =
            std::min(records.size(), lo + cfg_.records_per_split);
        const std::unique_ptr<Mapper> m = mapper();
        ECOST_CHECK(m != nullptr, "mapper factory returned null");
        Emitter em;
        for (std::size_t r = lo; r < hi; ++r) m->map(records[r], em);
        m->finish(em);
        map_out[s] = std::move(em.take());
      },
      static_cast<unsigned>(cfg_.map_parallelism));

  // --- shuffle: partition + stable sort by key ------------------------------
  std::vector<std::vector<KV>> buckets(cfg_.reduce_tasks);
  std::size_t map_output_records = 0;
  std::size_t shuffle_bytes = 0;
  // Splits are drained in order so equal keys keep a deterministic value
  // order regardless of map parallelism.
  for (std::vector<KV>& part : map_out) {
    map_output_records += part.size();
    for (KV& kv : part) {
      shuffle_bytes += kv.key.size() + kv.value.size();
      buckets[partition(kv.key, cfg_.reduce_tasks)].push_back(std::move(kv));
    }
    part.clear();
  }

  // --- reduce phase ----------------------------------------------------------
  std::vector<std::vector<KV>> reduce_out(cfg_.reduce_tasks);
  std::atomic<std::size_t> reduce_groups{0};
  parallel_for(
      cfg_.reduce_tasks,
      [&](std::size_t p) {
        std::vector<KV>& bucket = buckets[p];
        std::stable_sort(bucket.begin(), bucket.end(),
                         [](const KV& a, const KV& b) { return a.key < b.key; });
        const std::unique_ptr<Reducer> red = reducer();
        ECOST_CHECK(red != nullptr, "reducer factory returned null");
        Emitter em;
        std::size_t i = 0;
        std::size_t groups = 0;
        while (i < bucket.size()) {
          std::size_t j = i;
          std::vector<std::string> values;
          while (j < bucket.size() && bucket[j].key == bucket[i].key) {
            values.push_back(std::move(bucket[j].value));
            ++j;
          }
          red->reduce(bucket[i].key, values, em);
          ++groups;
          i = j;
        }
        reduce_groups.fetch_add(groups, std::memory_order_relaxed);
        reduce_out[p] = std::move(em.take());
      },
      static_cast<unsigned>(cfg_.map_parallelism));

  // --- collect ---------------------------------------------------------------
  std::vector<KV> out;
  std::size_t total = 0;
  for (const auto& part : reduce_out) total += part.size();
  out.reserve(total);
  for (auto& part : reduce_out) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }

  if (stats) {
    stats->map_tasks = n_splits;
    stats->input_records = records.size();
    stats->map_output_records = map_output_records;
    stats->shuffle_bytes = shuffle_bytes;
    stats->reduce_groups = reduce_groups.load();
    stats->output_records = out.size();
  }
  return out;
}

}  // namespace ecost::mrexec
