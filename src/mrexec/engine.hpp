// A small functional MapReduce engine.
//
// The performance study runs on the simulator (src/mapreduce), but a
// MapReduce library without MapReduce would be a strange thing to adopt:
// this engine actually executes map -> shuffle (partition + sort) -> reduce
// over in-memory records on a thread pool, deterministically. The built-in
// jobs (mrexec/builtin_jobs.hpp) are the real counterparts of the paper's
// micro-kernels.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ecost::mrexec {

struct KV {
  std::string key;
  std::string value;

  friend bool operator==(const KV&, const KV&) = default;
};

/// Collects a map/reduce task's output.
class Emitter {
 public:
  void emit(std::string key, std::string value) {
    out_.push_back({std::move(key), std::move(value)});
  }
  std::vector<KV>& take() { return out_; }

 private:
  std::vector<KV> out_;
};

/// One map task's logic. A fresh instance is created per task (factories
/// below), so implementations may keep per-task state (e.g. a combiner).
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void map(const std::string& record, Emitter& out) = 0;
  /// Called once when the task's split is exhausted (combiner flush).
  virtual void finish(Emitter& out) { (void)out; }
};

/// One reduce group's logic.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void reduce(const std::string& key,
                      const std::vector<std::string>& values,
                      Emitter& out) = 0;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

/// Assigns keys to reduce partitions. Must be deterministic.
using Partitioner = std::function<std::size_t(const std::string& key,
                                              std::size_t partitions)>;

/// Default FNV-1a hash partitioner.
std::size_t hash_partition(const std::string& key, std::size_t partitions);

/// Range partitioner built from sampled keys: partition boundaries are
/// quantiles of the sample, so reduce output concatenated by partition
/// index is globally key-sorted (how TeraSort achieves a total order).
Partitioner make_range_partitioner(std::vector<std::string> sample,
                                   std::size_t partitions);

struct JobConfig {
  std::size_t map_parallelism = 4;   ///< concurrent map tasks
  std::size_t reduce_tasks = 4;      ///< shuffle partitions
  std::size_t records_per_split = 4096;
  Partitioner partitioner;           ///< default: hash_partition

  void validate() const;
};

struct JobStats {
  std::size_t map_tasks = 0;
  std::size_t input_records = 0;
  std::size_t map_output_records = 0;
  std::size_t shuffle_bytes = 0;
  std::size_t reduce_groups = 0;
  std::size_t output_records = 0;
};

class Engine {
 public:
  explicit Engine(JobConfig cfg = {});

  /// Runs a full job over in-memory records. Output is ordered by
  /// (partition, key, emission order) and is identical for any
  /// `map_parallelism` — determinism is an invariant, not an accident.
  std::vector<KV> run(const std::vector<std::string>& records,
                      const MapperFactory& mapper,
                      const ReducerFactory& reducer,
                      JobStats* stats = nullptr) const;

  const JobConfig& config() const { return cfg_; }

 private:
  JobConfig cfg_;
};

}  // namespace ecost::mrexec
