// Seeded synthetic inputs for the functional engine: Zipf-ish text for
// WordCount/Grep and fixed-width random records for Sort (TeraGen-like).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ecost::mrexec {

struct TextOptions {
  std::size_t lines = 1000;
  std::size_t words_per_line = 12;
  std::size_t vocabulary = 500;   ///< distinct words
  double zipf_s = 1.1;            ///< skew; 0 = uniform
  std::uint64_t seed = 1;
};

/// Lines of lowercase words drawn from a Zipf-distributed vocabulary
/// ("w0".."wN" style tokens). Deterministic in the seed.
std::vector<std::string> generate_text(const TextOptions& opts);

/// TeraGen-like records: `count` strings of `width` random alphanumerics.
std::vector<std::string> generate_records(std::size_t count,
                                          std::size_t width,
                                          std::uint64_t seed);

}  // namespace ecost::mrexec
