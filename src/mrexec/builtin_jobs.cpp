#include "mrexec/builtin_jobs.hpp"

#include <algorithm>
#include <cctype>
#include <map>

#include "util/error.hpp"

namespace ecost::mrexec {
namespace {

class WordCountMapper final : public Mapper {
 public:
  void map(const std::string& record, Emitter& /*out*/) override {
    std::string word;
    for (char c : record) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        word += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      } else if (!word.empty()) {
        ++counts_[word];
        word.clear();
      }
    }
    if (!word.empty()) ++counts_[word];
  }

  void finish(Emitter& out) override {
    // Combiner: one record per distinct word per split.
    for (const auto& [word, count] : counts_) {
      out.emit(word, std::to_string(count));
    }
    counts_.clear();
  }

 private:
  std::map<std::string, std::size_t> counts_;
};

class SumReducer final : public Reducer {
 public:
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) override {
    std::size_t total = 0;
    for (const std::string& v : values) {
      total += static_cast<std::size_t>(std::stoull(v));
    }
    out.emit(key, std::to_string(total));
  }
};

class GrepMapper final : public Mapper {
 public:
  explicit GrepMapper(std::string needle) : needle_(std::move(needle)) {}

  void map(const std::string& record, Emitter& out) override {
    if (record.find(needle_) != std::string::npos) out.emit(record, "1");
  }

 private:
  std::string needle_;
};

class IdentityReducer final : public Reducer {
 public:
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) override {
    for (const std::string& v : values) out.emit(key, v);
  }
};

class SortMapper final : public Mapper {
 public:
  void map(const std::string& record, Emitter& out) override {
    out.emit(record, "");
  }
};

}  // namespace

MapperFactory wordcount_mapper() {
  return [] { return std::make_unique<WordCountMapper>(); };
}

ReducerFactory sum_reducer() {
  return [] { return std::make_unique<SumReducer>(); };
}

MapperFactory grep_mapper(std::string needle) {
  ECOST_REQUIRE(!needle.empty(), "grep needs a non-empty pattern");
  return [needle] { return std::make_unique<GrepMapper>(needle); };
}

ReducerFactory identity_reducer() {
  return [] { return std::make_unique<IdentityReducer>(); };
}

MapperFactory sort_mapper() {
  return [] { return std::make_unique<SortMapper>(); };
}

std::vector<std::string> run_sort(const Engine& engine,
                                  const std::vector<std::string>& records,
                                  JobStats* stats) {
  // Sample for range boundaries: every k-th record, as TeraSort's sampler
  // does, so partitions are balanced for roughly uniform data.
  JobConfig cfg = engine.config();
  std::vector<std::string> sample;
  const std::size_t stride = std::max<std::size_t>(1, records.size() / 1024);
  for (std::size_t i = 0; i < records.size(); i += stride) {
    sample.push_back(records[i]);
  }
  cfg.partitioner = make_range_partitioner(std::move(sample),
                                           cfg.reduce_tasks);
  const Engine ranged(cfg);
  const auto kvs = ranged.run(records, sort_mapper(), identity_reducer(),
                              stats);
  std::vector<std::string> out;
  out.reserve(kvs.size());
  for (const KV& kv : kvs) out.push_back(kv.key);
  return out;
}

std::vector<std::pair<std::string, std::size_t>> run_wordcount(
    const Engine& engine, const std::vector<std::string>& lines,
    JobStats* stats) {
  const auto kvs = engine.run(lines, wordcount_mapper(), sum_reducer(), stats);
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(kvs.size());
  for (const KV& kv : kvs) {
    out.emplace_back(kv.key, static_cast<std::size_t>(std::stoull(kv.value)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ecost::mrexec
