#include "mrexec/synthetic_data.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ecost::mrexec {

std::vector<std::string> generate_text(const TextOptions& opts) {
  ECOST_REQUIRE(opts.vocabulary >= 1, "vocabulary must be non-empty");
  ECOST_REQUIRE(opts.zipf_s >= 0.0, "zipf exponent must be >= 0");
  Rng rng(opts.seed);

  // Cumulative Zipf distribution over the vocabulary.
  std::vector<double> cdf(opts.vocabulary);
  double acc = 0.0;
  for (std::size_t r = 0; r < opts.vocabulary; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), opts.zipf_s);
    cdf[r] = acc;
  }
  for (double& v : cdf) v /= acc;

  auto draw_word = [&]() -> std::string {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::size_t rank = static_cast<std::size_t>(it - cdf.begin());
    return "w" + std::to_string(rank);
  };

  std::vector<std::string> lines;
  lines.reserve(opts.lines);
  for (std::size_t l = 0; l < opts.lines; ++l) {
    std::string line;
    for (std::size_t w = 0; w < opts.words_per_line; ++w) {
      if (w) line += ' ';
      line += draw_word();
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

std::vector<std::string> generate_records(std::size_t count,
                                          std::size_t width,
                                          std::uint64_t seed) {
  ECOST_REQUIRE(width >= 1, "records need at least one character");
  static constexpr char kAlphabet[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string rec(width, '0');
    for (char& c : rec) {
      c = kAlphabet[rng.uniform_u64(sizeof(kAlphabet) - 1)];
    }
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace ecost::mrexec
