// Structured tracing: typed span/instant/counter events into lock-cheap
// ring-buffer sinks, exported as Chrome trace_event JSON (open the file in
// chrome://tracing or https://ui.perfetto.dev).
//
// Producers hold a `TraceRecorder*` and call span()/instant()/counter()
// with explicit timestamps — the cluster engine passes its deterministic
// simulated clock, host-side producers (thread pool, evaluation cache)
// pass `wall_s()`. A null recorder pointer is the disabled state: every
// instrumentation site guards with one pointer test, so tracing costs
// nothing when off (guarded by the micro_sweep trace benchmarks).
//
// Events land in per-shard rings (shard picked by the producing thread's
// id) as fixed-size PODs under a short mutex hold; when a ring fills, the
// oldest events are overwritten and counted as dropped. Export merges the
// shards and sorts by (timestamp, sequence), so a single-threaded
// deterministic producer — the engine — yields a byte-stable event order
// (pinned by the golden-trace test).
//
// Track model: a `pid` names one track group (one engine run: "WS3/ECoST"),
// `tid` 0 is that run's scheduler lane and `tid` n+1 is cluster node n.
// pid 0 is reserved for host-side (wall-clock) producers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ecost::obs {

inline constexpr std::uint64_t kNoJob = ~std::uint64_t{0};

/// One trace event. `ph` follows the Chrome trace_event phases that the
/// exporter emits: 'X' complete (span), 'i' instant, 'C' counter.
struct TraceEvent {
  char ph = 'i';
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::uint64_t seq = 0;    ///< global emission order, breaks timestamp ties
  double ts_s = 0.0;        ///< event (or span start) time, seconds
  double dur_s = 0.0;       ///< span length ('X' only)
  const char* name = "";    ///< static taxonomy string — never freed
  std::uint64_t job = kNoJob;
  std::int32_t node = -1;
  double value = 0.0;       ///< counter value / free numeric argument
  bool has_value = false;
};

class TraceRecorder {
 public:
  struct Options {
    std::size_t capacity = 1 << 16;  ///< total ring slots across all shards
    std::size_t shards = 8;          ///< rounded up to a power of two
  };

  TraceRecorder() : TraceRecorder(Options{}) {}
  explicit TraceRecorder(Options opts);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Allocates a fresh track group (pid) named `name` — one per engine
  /// run. Thread-safe.
  std::uint32_t track(std::string name);

  /// Names a lane inside a track group ("node 0", "scheduler").
  void name_lane(std::uint32_t pid, std::uint32_t tid, std::string name);

  void instant(std::uint32_t pid, std::uint32_t tid, const char* name,
               double ts_s, std::uint64_t job = kNoJob, int node = -1);
  void span(std::uint32_t pid, std::uint32_t tid, const char* name,
            double start_s, double end_s, std::uint64_t job = kNoJob,
            int node = -1);
  void counter(std::uint32_t pid, std::uint32_t tid, const char* name,
               double ts_s, double value);

  /// Seconds since this recorder was created (steady clock) — the
  /// timestamp source for host-side (non-simulated) producers.
  double wall_s() const;

  std::size_t size() const;
  std::uint64_t dropped() const;
  void clear();

  /// All retained events, merged across shards and sorted by
  /// (ts_s, seq) — the exact order the exporter writes.
  std::vector<TraceEvent> sorted_events() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}): metadata names for
  /// every track, then the sorted events. Loads in Perfetto as-is.
  void export_chrome_json(std::ostream& os) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;
    std::size_t next = 0;   ///< ring cursor
    std::size_t used = 0;   ///< filled slots (<= ring.size())
    std::uint64_t dropped = 0;
  };

  void emit(const TraceEvent& ev);
  Shard& shard_for_this_thread();

  std::size_t shard_mask_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint32_t> next_pid_{1};  ///< pid 0 = host track
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex names_mu_;
  std::map<std::uint32_t, std::string> track_names_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> lane_names_;
};

/// Process-wide recorder hook for producers that are not wired explicitly
/// (the thread pool, sampled cache counters). Null when tracing is off —
/// the default. The caller owns the recorder and must clear the hook
/// before destroying it.
TraceRecorder* global_trace();
void set_global_trace(TraceRecorder* recorder);

}  // namespace ecost::obs
