// Process-wide metrics: named counters, gauges, and fixed-bucket
// histograms behind one registry with a snapshot/export API.
//
// This is the single home for the runtime's operational counters — the
// evaluation-cache hit/miss tallies that used to live as bespoke atomics
// inside EvalCache, the thread-pool loop statistics, and the cluster
// engine's event/placement/retune counts. Instrumented code resolves its
// handles once (a mutex-guarded name lookup) and then updates them with
// relaxed atomics only; `snapshot()` reads everything without stopping
// writers, and the JSON/table writers render a snapshot deterministically
// (sorted by name).
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime (elements live in deques and are never moved).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace ecost::obs {

/// Monotonic event count. Relaxed increments; safe from any thread.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (e.g. a queue depth or the most recent makespan).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first N buckets; one overflow bucket catches everything above the last
/// edge. Quantiles are estimated by linear interpolation inside the
/// containing bucket — exact enough for regression gating, cheap enough
/// for hot paths (one binary search + one relaxed increment per observe).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::span<const double> bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile (q in [0, 1]) from the bucket counts; the
  /// overflow bucket clamps to the last edge. 0 observations -> 0.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::deque<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Repeated calls with the same name return the
  /// same handle; a name registered as one kind may not be reused as
  /// another (throws std::logic_error).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` must be strictly increasing; ignored (the first winner's
  /// edges stick) when the histogram already exists.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Consistent-enough point-in-time copy (each value is read atomically;
  /// the set of metrics is read under the registry lock). Rows sorted by
  /// name.
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramRow> histograms;
  };
  Snapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} — stable
  /// key order (sorted), parseable by tools/check_bench.py.
  void write_json(std::ostream& os) const;

  /// Human-readable aligned table, one section per metric kind.
  void write_table(std::ostream& os) const;

  /// Process-wide default registry. Library code that is not handed an
  /// explicit registry records here (thread pool, node evaluator, cluster
  /// engine); tools export it via --metrics-out.
  static MetricsRegistry& global();

 private:
  enum class Kind { Counter, Gauge, Histogram };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Kind> kinds_;
  std::unordered_map<std::string, Counter*> counters_;
  std::unordered_map<std::string, Gauge*> gauges_;
  std::unordered_map<std::string, Histogram*> histograms_;
  // Deques never relocate elements: handles stay valid as metrics appear.
  std::deque<Counter> counter_store_;
  std::deque<Gauge> gauge_store_;
  std::deque<Histogram> histogram_store_;
};

}  // namespace ecost::obs
