#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <ostream>
#include <thread>

namespace ecost::obs {
namespace {

std::atomic<TraceRecorder*> g_trace{nullptr};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string fmt_us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string fmt_value(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

TraceRecorder* global_trace() {
  return g_trace.load(std::memory_order_acquire);
}

void set_global_trace(TraceRecorder* recorder) {
  g_trace.store(recorder, std::memory_order_release);
}

TraceRecorder::TraceRecorder(Options opts)
    : epoch_(std::chrono::steady_clock::now()) {
  std::size_t n = 1;
  while (n < std::max<std::size_t>(1, opts.shards)) n <<= 1;
  shard_mask_ = n - 1;
  per_shard_capacity_ = std::max<std::size_t>(1, opts.capacity / n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->ring.resize(per_shard_capacity_);
  }
}

TraceRecorder::Shard& TraceRecorder::shard_for_this_thread() {
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return *shards_[h & shard_mask_];
}

void TraceRecorder::emit(const TraceEvent& ev) {
  Shard& shard = shard_for_this_thread();
  std::lock_guard lock(shard.mu);
  if (shard.used == shard.ring.size()) ++shard.dropped;
  shard.ring[shard.next] = ev;
  shard.next = (shard.next + 1) % shard.ring.size();
  shard.used = std::min(shard.used + 1, shard.ring.size());
}

std::uint32_t TraceRecorder::track(std::string name) {
  const std::uint32_t pid =
      next_pid_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(names_mu_);
  track_names_.emplace(pid, std::move(name));
  return pid;
}

void TraceRecorder::name_lane(std::uint32_t pid, std::uint32_t tid,
                              std::string name) {
  std::lock_guard lock(names_mu_);
  lane_names_[{pid, tid}] = std::move(name);
}

void TraceRecorder::instant(std::uint32_t pid, std::uint32_t tid,
                            const char* name, double ts_s, std::uint64_t job,
                            int node) {
  TraceEvent ev;
  ev.ph = 'i';
  ev.pid = pid;
  ev.tid = tid;
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  ev.ts_s = ts_s;
  ev.name = name;
  ev.job = job;
  ev.node = node;
  emit(ev);
}

void TraceRecorder::span(std::uint32_t pid, std::uint32_t tid,
                         const char* name, double start_s, double end_s,
                         std::uint64_t job, int node) {
  TraceEvent ev;
  ev.ph = 'X';
  ev.pid = pid;
  ev.tid = tid;
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  ev.ts_s = start_s;
  ev.dur_s = std::max(0.0, end_s - start_s);
  ev.name = name;
  ev.job = job;
  ev.node = node;
  emit(ev);
}

void TraceRecorder::counter(std::uint32_t pid, std::uint32_t tid,
                            const char* name, double ts_s, double value) {
  TraceEvent ev;
  ev.ph = 'C';
  ev.pid = pid;
  ev.tid = tid;
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  ev.ts_s = ts_s;
  ev.name = name;
  ev.value = value;
  ev.has_value = true;
  emit(ev);
}

double TraceRecorder::wall_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::size_t TraceRecorder::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    n += shard->used;
  }
  return n;
}

std::uint64_t TraceRecorder::dropped() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    n += shard->dropped;
  }
  return n;
}

void TraceRecorder::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->next = 0;
    shard->used = 0;
    shard->dropped = 0;
  }
}

std::vector<TraceEvent> TraceRecorder::sorted_events() const {
  std::vector<TraceEvent> events;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    // Ring contents in emission order: oldest first.
    const std::size_t cap = shard->ring.size();
    const std::size_t start = (shard->next + cap - shard->used) % cap;
    for (std::size_t i = 0; i < shard->used; ++i) {
      events.push_back(shard->ring[(start + i) % cap]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_s != b.ts_s) return a.ts_s < b.ts_s;
              return a.seq < b.seq;
            });
  return events;
}

void TraceRecorder::export_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = sorted_events();
  os << "{\"traceEvents\":[";
  bool first = true;
  {
    std::lock_guard lock(names_mu_);
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
          "\"args\":{\"name\":\"host\"}}";
    first = false;
    for (const auto& [pid, name] : track_names_) {
      os << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
    }
    for (const auto& [key, name] : lane_names_) {
      os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
         << ",\"tid\":" << key.second << ",\"args\":{\"name\":\""
         << json_escape(name) << "\"}}";
    }
  }
  for (const TraceEvent& ev : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"" << json_escape(ev.name);
    if (ev.job != kNoJob && ev.ph != 'C') os << " #" << ev.job;
    os << "\",\"cat\":\"ecost\",\"ph\":\"" << ev.ph
       << "\",\"ts\":" << fmt_us(ev.ts_s);
    if (ev.ph == 'X') os << ",\"dur\":" << fmt_us(ev.dur_s);
    os << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
    if (ev.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{";
    bool first_arg = true;
    if (ev.ph == 'C') {
      os << "\"" << json_escape(ev.name) << "\":" << fmt_value(ev.value);
      first_arg = false;
    } else {
      if (ev.job != kNoJob) {
        os << "\"job\":" << ev.job;
        first_arg = false;
      }
      if (ev.node >= 0) {
        os << (first_arg ? "" : ",") << "\"node\":" << ev.node;
        first_arg = false;
      }
      if (ev.has_value) {
        os << (first_arg ? "" : ",") << "\"value\":" << fmt_value(ev.value);
        first_arg = false;
      }
    }
    os << "}}";
  }
  os << "\n]}\n";
}

}  // namespace ecost::obs
