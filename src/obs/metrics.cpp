#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace ecost::obs {
namespace {

void add_relaxed(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

double quantile_from_buckets(std::span<const double> bounds,
                             std::span<const std::uint64_t> counts,
                             std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double next = cum + static_cast<double>(counts[b]);
    if (next >= target || b + 1 == counts.size()) {
      // The overflow bucket has no upper edge: clamp to the last bound.
      if (b >= bounds.size()) {
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double hi = bounds[b];
      const double in_bucket = static_cast<double>(counts[b]);
      if (in_bucket <= 0.0) return hi;
      const double frac = std::clamp((target - cum) / in_bucket, 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::logic_error("histogram bounds must be strictly increasing");
    }
  }
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
    counts_.emplace_back(0);
  }
}

void Histogram::observe(double v) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v,
                                   [](double a, double b) { return a <= b; });
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_relaxed(sum_, v);
}

double Histogram::quantile(double q) const {
  std::vector<std::uint64_t> counts(counts_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  return quantile_from_buckets(bounds_, counts, total, q);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  if (const auto it = counters_.find(name); it != counters_.end()) {
    return *it->second;
  }
  if (kinds_.count(name) != 0) {
    throw std::logic_error("metric '" + name + "' already registered "
                           "as a different kind");
  }
  kinds_.emplace(name, Kind::Counter);
  Counter& c = counter_store_.emplace_back();
  counters_.emplace(name, &c);
  return c;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  if (const auto it = gauges_.find(name); it != gauges_.end()) {
    return *it->second;
  }
  if (kinds_.count(name) != 0) {
    throw std::logic_error("metric '" + name + "' already registered "
                           "as a different kind");
  }
  kinds_.emplace(name, Kind::Gauge);
  Gauge& g = gauge_store_.emplace_back();
  gauges_.emplace(name, &g);
  return g;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  if (const auto it = histograms_.find(name); it != histograms_.end()) {
    return *it->second;
  }
  if (kinds_.count(name) != 0) {
    throw std::logic_error("metric '" + name + "' already registered "
                           "as a different kind");
  }
  kinds_.emplace(name, Kind::Histogram);
  Histogram& h = histogram_store_.emplace_back(std::move(bounds));
  histograms_.emplace(name, &h);
  return h;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramRow row;
    row.name = name;
    row.bounds.assign(h->bounds().begin(), h->bounds().end());
    row.counts.resize(row.bounds.size() + 1);
    for (std::size_t b = 0; b < row.counts.size(); ++b) {
      row.counts[b] = h->bucket_count(b);
      row.count += row.counts[b];
    }
    row.sum = h->sum();
    row.p50 = quantile_from_buckets(row.bounds, row.counts, row.count, 0.50);
    row.p90 = quantile_from_buckets(row.bounds, row.counts, row.count, 0.90);
    row.p99 = quantile_from_buckets(row.bounds, row.counts, row.count, 0.99);
    snap.histograms.push_back(std::move(row));
  }
  std::sort(snap.counters.begin(), snap.counters.end());
  std::sort(snap.gauges.begin(), snap.gauges.end());
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramRow& a, const HistogramRow& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const Snapshot snap = snapshot();
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << json_escape(snap.counters[i].first)
       << "\": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << json_escape(snap.gauges[i].first)
       << "\": " << fmt_double(snap.gauges[i].second);
  }
  os << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramRow& h = snap.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(h.name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << fmt_double(h.sum)
       << ", \"p50\": " << fmt_double(h.p50)
       << ", \"p90\": " << fmt_double(h.p90)
       << ", \"p99\": " << fmt_double(h.p99) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << (b == 0 ? "" : ", ") << "{\"le\": "
         << (b < h.bounds.size() ? fmt_double(h.bounds[b]) : "\"inf\"")
         << ", \"count\": " << h.counts[b] << "}";
    }
    os << "]}";
  }
  os << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::write_table(std::ostream& os) const {
  const Snapshot snap = snapshot();
  std::size_t width = 8;
  for (const auto& [name, v] : snap.counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, v] : snap.gauges) {
    width = std::max(width, name.size());
  }
  for (const auto& h : snap.histograms) width = std::max(width, h.name.size());

  auto pad = [&](const std::string& s) {
    os << s;
    for (std::size_t i = s.size(); i < width + 2; ++i) os << ' ';
  };
  if (!snap.counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, v] : snap.counters) {
      os << "  ";
      pad(name);
      os << v << '\n';
    }
  }
  if (!snap.gauges.empty()) {
    os << "gauges:\n";
    for (const auto& [name, v] : snap.gauges) {
      os << "  ";
      pad(name);
      os << fmt_double(v) << '\n';
    }
  }
  if (!snap.histograms.empty()) {
    os << "histograms:\n";
    for (const auto& h : snap.histograms) {
      os << "  ";
      pad(h.name);
      os << "count " << h.count << "  sum " << fmt_double(h.sum) << "  p50 "
         << fmt_double(h.p50) << "  p90 " << fmt_double(h.p90) << "  p99 "
         << fmt_double(h.p99) << '\n';
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace ecost::obs
