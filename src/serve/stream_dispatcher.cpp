#include "serve/stream_dispatcher.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/profiling.hpp"
#include "perfmon/perf_sampler.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace ecost::serve {

using core::AppInfo;
using core::Placement;
using core::QueuedJob;
using core::RunningJob;
using mapreduce::AppConfig;
using mapreduce::PairConfig;

namespace {
constexpr double kEps = 1e-9;

// Bucket edges of the admission-latency histogram (simulated seconds).
std::vector<double> admission_bounds() {
  return {1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0, 14400.0};
}
}  // namespace

StreamDispatcher::StreamDispatcher(const mapreduce::NodeEvaluator& eval,
                                   mapreduce::EvalCache& cache,
                                   const core::TrainingData& td,
                                   const core::SelfTuner& stp,
                                   SubmitQueue& queue, ServeOptions opts)
    : eval_(eval),
      cache_(cache),
      td_(td),
      stp_(&stp),
      submissions_(queue),
      opts_(opts),
      dcache_(DecisionCache::Options{opts.cache_shards, opts.cache_capacity,
                                     knob_space_digest(td), nullptr}) {
  ECOST_REQUIRE(opts_.deadline_s > 0.0, "admission deadline must be positive");
  ECOST_REQUIRE(opts_.queue_limit >= 2,
                "queue limit must admit at least one pair");
  ECOST_REQUIRE(opts_.tuner_cost_s >= 0.0, "tuner cost must be non-negative");
  ECOST_REQUIRE(opts_.tuner_budget_s >= 0.0,
                "tuner budget must be non-negative");
  ECOST_REQUIRE(opts_.classify_runs >= 1, "classification needs >= 1 run");
  ECOST_REQUIRE(opts_.serve_threads >= 1, "serving needs >= 1 thread");
  if (opts_.serve_threads >= 2 && opts_.prefetch) {
    Prefetcher::Options popts;
    prefetcher_ = std::make_unique<Prefetcher>(eval_, cache_, td_, dcache_,
                                               truth_, stp, popts);
  }
}

void StreamDispatcher::bind_metrics() {
  if (bound_metrics_ == metrics_) return;
  bound_metrics_ = metrics_;
  c_classified_ = &metrics_->counter("serve.classified");
  c_classify_us_ = &metrics_->counter("serve.classify_us");
  c_admitted_ = &metrics_->counter("serve.admitted");
  c_deferred_ = &metrics_->counter("serve.deferred");
  c_kind_[static_cast<int>(DecisionKind::Pair)] =
      &metrics_->counter("serve.pair");
  c_kind_[static_cast<int>(DecisionKind::Solo)] =
      &metrics_->counter("serve.solo");
  c_kind_[static_cast<int>(DecisionKind::Backfill)] =
      &metrics_->counter("serve.backfill");
  c_kind_[static_cast<int>(DecisionKind::Degraded)] =
      &metrics_->counter("serve.degraded");
  c_kind_[static_cast<int>(DecisionKind::Deadline)] =
      &metrics_->counter("serve.deadline");
  h_admission_ = &metrics_->histogram("serve.admission_s", admission_bounds());
  g_queue_depth_ = &metrics_->gauge("serve.queue_depth");
  g_backlog_depth_ = &metrics_->gauge("serve.backlog_depth");
  dcache_.attach_metrics(metrics_);
}

void StreamDispatcher::swap_tuner(const core::SelfTuner& stp) {
  stp_ = &stp;
  if (prefetcher_) prefetcher_->set_tuner(stp);
  dcache_.invalidate();
}

void StreamDispatcher::ensure_lookahead(double now_s) const {
  // Wait until the producer has shown us an arrival beyond `now` (or hung
  // up): only then is the set of due submissions complete, and only then
  // may a decision be made. This barrier is what makes the simulated
  // trajectory independent of feeder pace and drain chunking.
  while (!stream_done_ &&
         (lookahead_.empty() || lookahead_.back().arrival_s <= now_s)) {
    drain_buf_.clear();
    if (!submissions_.wait_drain(drain_buf_)) {
      stream_done_ = true;
      break;
    }
    for (Submission& s : drain_buf_) {
      ECOST_REQUIRE(
          lookahead_.empty() || s.arrival_s >= lookahead_.back().arrival_s,
          "submissions must arrive in nondecreasing time order");
      // Earliest possible speculation point: the job will not be admitted
      // before the next plan(), so the prefetcher has the whole gap to
      // warm the caches it will consult.
      if (prefetcher_) prefetcher_->hint(s.job);
      lookahead_.push_back(std::move(s));
    }
  }
}

core::QueuedJob StreamDispatcher::classify(const Submission& s) {
  const auto t0 = std::chrono::steady_clock::now();
  // Ground-truth learning-period signature, one solo probe run per distinct
  // application (memoized — the stream repeats the same apps endlessly).
  const std::uint64_t digest = mapreduce::app_digest(s.job.app);
  const perfmon::FeatureVector& fv =
      truth_.get_or_profile(eval_, s.job.app, digest);
  // First counter samples: a seeded multiplexed PMU pass over the truth.
  perfmon::PerfSampler sampler(opts_.profile_seed ^
                               (s.id * 0x9E3779B97F4A7C15ULL));
  QueuedJob qj;
  qj.id = s.id;
  qj.info.job = s.job;
  qj.info.features = sampler.sample_averaged(fv, opts_.classify_runs);
  qj.info.cls = td_.classifier.classify(qj.info.features);
  qj.est_duration_s = cache_.run_solo(s.job, kServeDefaultCfg).makespan_s;
  qj.submit_s = s.arrival_s;
  qj.app_digest = digest;
  c_classified_->add();
  c_classify_us_->add(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return qj;
}

void StreamDispatcher::admit(double now_s) {
  // Phase 1 (serial): decide which due submissions are admissible this
  // instant — pure arrival/queue-depth/deadline logic, no classification.
  admit_buf_.clear();
  std::size_t depth = queue_.size();
  while (!lookahead_.empty() &&
         lookahead_.front().arrival_s <= now_s + kEps) {
    const Submission& front = lookahead_.front();
    const bool overdue = now_s - front.arrival_s >= opts_.deadline_s - kEps;
    if (depth >= opts_.queue_limit && !overdue) {
      // Backpressure: the wait queue is full, so admission (and with it
      // classification) waits. The job keeps aging toward its deadline —
      // deferral never hides latency, and an overdue job always gets in.
      if (front.id >= deferral_mark_) {
        stats_.deferred += 1;
        c_deferred_->add();
        deferral_mark_ = front.id + 1;
      }
      break;
    }
    admit_buf_.push_back(front);
    depth += 1;
    lookahead_.pop_front();
  }
  if (admit_buf_.empty()) return;

  // Phase 2: classify the batch. Every per-job quantity (sampler seed,
  // truth signature, duration estimate) depends only on the submission
  // itself, so the index-addressed parallel run produces bit-identical
  // QueuedJobs in every schedule and at every worker count.
  classified_buf_.assign(admit_buf_.size(), QueuedJob{});
  if (opts_.serve_threads >= 2 && admit_buf_.size() >= 2) {
    parallel_for(
        admit_buf_.size(),
        [&](std::size_t i) { classified_buf_[i] = classify(admit_buf_[i]); },
        static_cast<unsigned>(opts_.serve_threads));
  } else {
    for (std::size_t i = 0; i < admit_buf_.size(); ++i) {
      classified_buf_[i] = classify(admit_buf_[i]);
    }
  }

  // Phase 3 (serial): push in arrival order; stats and trace stay ordered.
  for (QueuedJob& qj : classified_buf_) {
    stats_.admitted += 1;
    c_admitted_->add();
    if (trace_ != nullptr) {
      trace_->instant(obs_pid_, 0, "admit", now_s, qj.id);
    }
    queue_.push(std::move(qj));
  }
}

bool StreamDispatcher::tuner_within_budget(double now_s) {
  const double wait = std::max(0.0, tuner_free_s_ - now_s);
  if (wait > opts_.tuner_budget_s) return false;
  tuner_free_s_ = std::max(now_s, tuner_free_s_) + opts_.tuner_cost_s;
  return true;
}

AppConfig StreamDispatcher::untuned_config() const {
  // CBM-style untuned co-location default: stock frequency and block size,
  // an even share of the node's cores — safe next to any co-resident
  // (mapper counts of a co-located pair must partition the cores).
  AppConfig cfg = kServeDefaultCfg;
  cfg.mappers = std::max(1, eval_.spec().cores / 2);
  return cfg;
}

AppConfig StreamDispatcher::solo_config(const AppInfo& info) {
  // Nearest-size solo optimum for the classified class — a table read
  // behind the decision cache, so it stays on even when the pair tuner is
  // over budget.
  if (!opts_.decision_cache) {
    return solo_optimum(td_, info.cls, info.size_gib());
  }
  const SoloDecisionKey key{static_cast<std::uint8_t>(info.cls),
                            info.job.input_bytes};
  if (const auto hit = dcache_.solo_lookup(key)) return *hit;
  const std::uint64_t epoch = dcache_.epoch();
  const AppConfig cfg = solo_optimum(td_, info.cls, info.size_gib());
  dcache_.solo_insert(key, cfg, epoch);
  return cfg;
}

PairConfig StreamDispatcher::pair_config(const QueuedJob& head,
                                         const QueuedJob& partner) {
  if (!opts_.decision_cache) return stp_->predict(head.info, partner.info);
  const PairDecisionKey key = make_pair_key(
      head.app_digest, head.info.job.input_bytes, head.info.cls,
      partner.app_digest, partner.info.job.input_bytes, partner.info.cls);
  if (const auto hit = dcache_.pair_lookup(key)) return *hit;
  const std::uint64_t epoch = dcache_.epoch();
  const PairConfig pc = stp_->predict(head.info, partner.info);
  dcache_.pair_insert(key, pc, epoch);
  return pc;
}

PairConfig StreamDispatcher::pair_config(const RunningJob& survivor,
                                         const QueuedJob& partner) {
  if (!opts_.decision_cache) {
    return stp_->predict(survivor.job.info, partner.info);
  }
  const PairDecisionKey key =
      make_pair_key(survivor.app_digest, survivor.job.info.job.input_bytes,
                    survivor.job.info.cls, partner.app_digest,
                    partner.info.job.input_bytes, partner.info.cls);
  if (const auto hit = dcache_.pair_lookup(key)) return *hit;
  const std::uint64_t epoch = dcache_.epoch();
  const PairConfig pc = stp_->predict(survivor.job.info, partner.info);
  dcache_.pair_insert(key, pc, epoch);
  return pc;
}

void StreamDispatcher::record(const QueuedJob& job, double now_s, int node,
                              const AppConfig& cfg, DecisionKind kind,
                              std::uint64_t partner_id) {
  const double waited = std::max(0.0, now_s - job.submit_s);
  stats_.max_wait_s = std::max(stats_.max_wait_s, waited);
  const char* name = "solo";
  switch (kind) {
    case DecisionKind::Pair:
      stats_.pairs += 1;
      name = "pair";
      break;
    case DecisionKind::Solo:
      stats_.solos += 1;
      name = "solo";
      break;
    case DecisionKind::Backfill:
      stats_.backfills += 1;
      name = "backfill";
      break;
    case DecisionKind::Degraded:
      stats_.degraded += 1;
      name = "degraded";
      break;
    case DecisionKind::Deadline:
      stats_.deadline_placements += 1;
      name = "deadline";
      break;
  }
  c_kind_[static_cast<int>(kind)]->add();
  h_admission_->observe(waited);
  if (trace_ != nullptr) {
    trace_->instant(obs_pid_, 0, name, now_s, job.id, node);
  }
  decisions_.push_back({now_s, job.id, node, cfg, kind, partner_id, waited});
}

std::vector<Placement> StreamDispatcher::plan(const core::ClusterView& view,
                                              double now_s) {
  bind_metrics();
  ensure_lookahead(now_s);
  std::vector<Placement> out;
  // Slots consumed by this round's own placements — the view only reflects
  // what the engine has already applied.
  used_.assign(static_cast<std::size_t>(view.nodes()), 0);
  auto used = [&](int node) -> std::size_t& {
    return used_[static_cast<std::size_t>(node)];
  };
  const auto avail = [&](int node) {
    const std::size_t free = view.free_slots(node);
    const std::size_t u = used(node);
    return free > u ? free - u : 0;
  };

  view.nodes_rack_major(core::RackOrder::LeastBusyFirst, order_);
  const std::vector<int>& order = order_;

  // The engine never re-plans "at now": everything due this instant must be
  // handled in this one call. Placements can drain the wait queue below its
  // limit and thereby un-defer admissions that were backpressured moments
  // ago, so admission and placement repeat until a pass changes nothing.
  bool progress = true;
  while (progress) {
    progress = false;
    admit(now_s);

    // Rung b of the degradation ladder: jobs at their admission deadline take
    // the first free slot, untuned, bypassing pairing rank and leap rules.
    // The O(1) oldest-submit probe skips the whole rung (and its per-node
    // residents/free-slot walks) when nothing can be overdue: pop_overdue
    // answers nullopt for every node in that case, so the skip is
    // trajectory-identical — `now` is constant within the pass and admit()
    // has already run.
    bool overdue_left = false;
    if (const auto oldest = queue_.oldest_submit_s()) {
      overdue_left = now_s - *oldest >= opts_.deadline_s - kEps;
    }
    for (const int node : order) {
      if (!overdue_left) break;
      if (used(node) > 0) continue;  // filled this pass; re-plan next event
      const auto residents = view.residents(node);
      const auto capacity =
          static_cast<int>(residents.size() + view.free_slots(node));
      // An emergency placement may land next to any mix of residents, so it
      // takes an even core share per slot — the one mapper split that stays
      // within the core budget whatever already runs there once the residents
      // are shrunk to the same share.
      AppConfig share = untuned_config();
      share.mappers = std::max(1, eval_.spec().cores / std::max(1, capacity));
      bool placed_here = false;
      while (avail(node) >= 1) {
        auto job = queue_.pop_overdue(now_s, opts_.deadline_s);
        if (!job) {
          overdue_left = false;
          break;
        }
        record(*job, now_s, node, share, DecisionKind::Deadline, 0);
        used(node) += 1;
        placed_here = true;
        progress = true;
        out.push_back(Placement{std::move(*job), share, {node}, false});
      }
      if (placed_here) {
        for (const RunningJob& survivor : residents) {
          AppConfig scfg = survivor.cfg;
          scfg.mappers = share.mappers;
          if (scfg != survivor.cfg) pending_retune_[survivor.job.id] = scfg;
        }
      }
    }

    // Normal operation: decision-tree pair formation with head reservation,
    // leap-forward, and survivor backfilling (EcostDispatcher's loop, with
    // the tuner-budget rung layered on top).
    for (const int node : order) {
      if (queue_.empty()) break;
      if (used(node) > 0) continue;  // filled this round; re-plan next event
      const auto residents = view.residents(node);

      if (residents.empty() && avail(node) >= 2) {
        auto head = queue_.pop_head();
        if (!head) continue;
        auto partner =
            queue_.pop_for(head->info.cls, head->est_duration_s, policy_);
        if (partner) {
          if (tuner_within_budget(now_s)) {
            // NOTE: tuner budget is charged above even on a cache hit — a
            // hit saves wall time, not the modeled tuner occupancy, so the
            // degradation trajectory is identical with the cache on or off.
            const PairConfig pc = pair_config(*head, *partner);
            record(*head, now_s, node, pc.first, DecisionKind::Pair,
                   partner->id);
            record(*partner, now_s, node, pc.second, DecisionKind::Pair,
                   head->id);
            out.push_back(Placement{std::move(*head), pc.first, {node}, false});
            out.push_back(
                Placement{std::move(*partner), pc.second, {node}, false});
          } else {
            // Rung a: tuner over budget — co-locate untuned rather than
            // queueing the pair behind the tuner.
            const AppConfig cfg = untuned_config();
            record(*head, now_s, node, cfg, DecisionKind::Degraded,
                   partner->id);
            record(*partner, now_s, node, cfg, DecisionKind::Degraded,
                   head->id);
            out.push_back(Placement{std::move(*head), cfg, {node}, false});
            out.push_back(Placement{std::move(*partner), cfg, {node}, false});
          }
          used(node) += 2;
          progress = true;
        } else {
          const AppConfig cfg = solo_config(head->info);
          record(*head, now_s, node, cfg, DecisionKind::Solo, 0);
          out.push_back(Placement{std::move(*head), cfg, {node}, false});
          used(node) += 1;
          progress = true;
        }
        continue;
      }

      if (residents.size() == 1 && avail(node) >= 1) {
        const RunningJob& survivor = residents[0];
        const double remaining_s = survivor.remaining * survivor.est_total_s;
        auto partner =
            queue_.pop_for(survivor.job.info.cls, remaining_s, policy_);
        if (partner) {
          if (tuner_within_budget(now_s)) {
            const PairConfig pc = pair_config(survivor, *partner);
            pending_retune_[survivor.job.id] = pc.first;
            record(*partner, now_s, node, pc.second, DecisionKind::Backfill,
                   survivor.job.id);
            out.push_back(
                Placement{std::move(*partner), pc.second, {node}, false});
          } else {
            const AppConfig cfg = untuned_config();
            AppConfig scfg = survivor.cfg;
            scfg.mappers = std::max(1, eval_.spec().cores - cfg.mappers);
            if (scfg != survivor.cfg) {
              pending_retune_[survivor.job.id] = scfg;
            }
            record(*partner, now_s, node, cfg, DecisionKind::Degraded,
                   survivor.job.id);
            out.push_back(Placement{std::move(*partner), cfg, {node}, false});
          }
          used(node) += 1;
          progress = true;
        }
      }
    }
  }

  g_queue_depth_->set(static_cast<double>(queue_.size()));
  g_backlog_depth_->set(static_cast<double>(lookahead_.size()));
  if (trace_ != nullptr) {
    trace_->counter(obs_pid_, 0, "queue_depth", now_s,
                    static_cast<double>(queue_.size()));
  }
  return out;
}

std::optional<AppConfig> StreamDispatcher::retune(
    const RunningJob& running, std::span<const RunningJob> others) {
  const auto it = pending_retune_.find(running.job.id);
  if (it != pending_retune_.end()) {
    const AppConfig cfg = it->second;
    pending_retune_.erase(it);
    return cfg;
  }
  // Alone with nothing left anywhere in the stream: expand onto the node.
  if (others.size() == 1 && queue_.empty() && lookahead_.empty() &&
      stream_done_) {
    AppConfig cfg = solo_config(running.job.info);
    if (cfg == running.cfg) return std::nullopt;
    return cfg;
  }
  return std::nullopt;
}

double StreamDispatcher::next_arrival_s(double now_s) const {
  ensure_lookahead(now_s);
  double next = std::numeric_limits<double>::infinity();
  if (!lookahead_.empty()) {
    const double a = lookahead_.front().arrival_s;
    next = a > now_s + kEps ? a : now_s;
  }
  // Deadline wake-up: re-plan exactly when the oldest unplaced job expires.
  // An expiry already in the past schedules nothing — capacity, not time,
  // is what that job is waiting for, and any membership change re-plans.
  double oldest = std::numeric_limits<double>::infinity();
  if (const auto q = queue_.oldest_submit_s()) oldest = *q;
  if (!lookahead_.empty()) {
    oldest = std::min(oldest, lookahead_.front().arrival_s);
  }
  if (std::isfinite(oldest)) {
    const double expiry = oldest + opts_.deadline_s;
    if (expiry > now_s + kEps) next = std::min(next, expiry);
  }
  if (!std::isfinite(next) && !queue_.empty()) return now_s;
  return next;
}

}  // namespace ecost::serve
