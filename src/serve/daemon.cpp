#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace ecost::serve {

namespace {

/// Exact quantile over the decision latencies (nearest-rank); the metrics
/// histogram keeps its interpolated estimate for live export, but the
/// report gates on the true distribution.
double exact_quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(q * (n - 1.0) + 0.5);
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

}  // namespace

ServeDaemon::ServeDaemon(const mapreduce::NodeEvaluator& eval,
                         mapreduce::EvalCache& cache,
                         const core::TrainingData& td,
                         const core::SelfTuner& stp, DaemonOptions opts)
    : eval_(eval), cache_(cache), td_(td), stp_(stp), opts_(opts) {
  ECOST_REQUIRE(opts_.nodes >= 1, "daemon needs at least one node");
  ECOST_REQUIRE(opts_.slots_per_node >= 1, "need at least one slot per node");
  ECOST_REQUIRE(opts_.submit_capacity >= 1, "submit capacity must be >= 1");
}

void ServeDaemon::set_obs(obs::TraceRecorder* trace, std::uint32_t pid,
                          obs::MetricsRegistry* metrics) {
  trace_ = trace;
  pid_ = pid;
  metrics_ = metrics;
}

ServeReport ServeDaemon::run_trace(
    std::span<const workloads::Arrival> arrivals) {
  SubmitQueue queue(opts_.submit_capacity);
  StreamDispatcher disp(eval_, cache_, td_, stp_, queue, opts_.serve);
  core::ClusterEngine engine =
      opts_.topology.has_value()
          ? core::ClusterEngine(eval_, *opts_.topology, opts_.slots_per_node)
          : core::ClusterEngine(eval_, opts_.nodes, opts_.slots_per_node);
  engine.set_obs(trace_, pid_);
  if (metrics_ != nullptr) engine.set_metrics(metrics_);

  // The feeder stands in for the network front end: it replays the trace in
  // order and blocks whenever the bounded queue applies backpressure. The
  // dispatcher's lookahead barrier makes the hand-off pace unobservable in
  // simulated time, so this thread may run as fast or slow as it likes.
  std::thread feeder([&queue, arrivals] {
    std::uint64_t id = 0;
    for (const workloads::Arrival& a : arrivals) {
      Submission s;
      s.id = ++id;
      s.arrival_s = a.t_s;
      s.job = mapreduce::JobSpec::of_gib(a.app, a.gib);
      if (!queue.submit(std::move(s))) break;
    }
    queue.close();
  });

  const auto t0 = std::chrono::steady_clock::now();
  ServeReport report;
  try {
    report.outcome = engine.run(disp);
  } catch (...) {
    // Unblock and collect the feeder before unwinding, or the joinable
    // thread's destructor would terminate the process and eat the error.
    queue.close();
    feeder.join();
    throw;
  }
  report.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  feeder.join();

  report.stats = disp.stats();
  report.cache = disp.cache_stats();
  report.prefetch = disp.prefetch_stats();
  report.jobs = arrivals.size();
  report.producer_blocked = queue.blocked();
  report.decisions.assign(disp.decisions().begin(), disp.decisions().end());

  std::vector<double> waits;
  waits.reserve(report.decisions.size());
  for (const auto& d : report.decisions) waits.push_back(d.waited_s);
  std::sort(waits.begin(), waits.end());
  report.p50_placement_wait_s = exact_quantile(waits, 0.5);
  report.p99_placement_wait_s = exact_quantile(waits, 0.99);
  report.max_placement_wait_s = waits.empty() ? 0.0 : waits.back();
  report.decisions_per_s =
      report.wall_s > 0.0
          ? static_cast<double>(report.stats.decisions()) / report.wall_s
          : 0.0;
  return report;
}

}  // namespace ecost::serve
