// Sharded, LRU-bounded memo of tuned serving decisions (ISSUE 10 tentpole
// part 1). The hot rungs of StreamDispatcher::plan() — the STP pair
// prediction and the solo-optimum table scan — are pure functions of their
// operands, so the daemon can answer a repeated decision without touching
// the model or the grid evaluator at all.
//
// Key semantics (documented in DESIGN.md §5i): entries are keyed on the
// *identity* of both operands — app digest + exact input bytes + assigned
// class — not on the class pair alone. The ECoST class is a lossy label:
// two applications of the same class pair can tune to different configs,
// so a class-pair key would change decisions and break the exact decision
// counters that CI gates. App identity is the finest key the decision
// depends on (predictions are invariant to the per-job PMU sampling noise,
// which only enters through the classifier), so memoization is exact: a
// cached run is bit-identical to an uncached one. The knob-space digest is
// folded into every hash so baselines trained over different candidate
// sets never alias.
//
// Invalidation: swap_tuner() bumps the epoch and drops every entry. Inserts
// carry the epoch their value was computed under; a stale insert (raced by
// an invalidation — e.g. a prefetch completing across a tuner swap) is
// rejected, never published.
//
// Thread safety: one mutex per shard; lookups and inserts from the
// scheduling thread and the prefetcher interleave freely.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mapreduce/app_profile.hpp"
#include "mapreduce/config.hpp"
#include "obs/metrics.hpp"

namespace ecost::core {
struct TrainingData;
}

namespace ecost::serve {

/// Identity of one tuned pair decision, in predict(a, b) argument order.
struct PairDecisionKey {
  std::uint64_t a_digest = 0;  ///< mapreduce::app_digest of the head/survivor
  std::uint64_t b_digest = 0;  ///< digest of the partner
  std::uint64_t a_bytes = 0;   ///< exact input bytes, not a bucket
  std::uint64_t b_bytes = 0;
  std::uint16_t classes = 0;   ///< (cls_a << 8) | cls_b guard
  friend bool operator==(const PairDecisionKey&,
                         const PairDecisionKey&) = default;
};

/// Identity of one solo-optimum decision (solo_config is a pure function
/// of the class and the input size).
struct SoloDecisionKey {
  std::uint8_t cls = 0;
  std::uint64_t bytes = 0;
  friend bool operator==(const SoloDecisionKey&,
                         const SoloDecisionKey&) = default;
};

/// Order-independent digest of the tuner's knob domain (candidate configs
/// per class pair + the solo database). Folded into every cache hash so
/// entries computed over one knob space never answer for another.
std::uint64_t knob_space_digest(const core::TrainingData& td);

/// The CBM-style untuned default every serving rung starts from (stock
/// frequency and block size) — shared by the dispatcher and prefetcher so
/// speculative warms hit the exact keys the inline path will ask for.
inline constexpr mapreduce::AppConfig kServeDefaultCfg{
    sim::FreqLevel::F2_4, 128, 8};

/// Nearest-size solo optimum for a class — the pure function behind
/// StreamDispatcher's solo rung, factored out so prefetch fills compute
/// byte-identical values.
mapreduce::AppConfig solo_optimum(const core::TrainingData& td,
                                  mapreduce::AppClass cls, double size_gib);

inline PairDecisionKey make_pair_key(std::uint64_t a_digest,
                                     std::uint64_t a_bytes,
                                     mapreduce::AppClass a_cls,
                                     std::uint64_t b_digest,
                                     std::uint64_t b_bytes,
                                     mapreduce::AppClass b_cls) {
  PairDecisionKey k;
  k.a_digest = a_digest;
  k.b_digest = b_digest;
  k.a_bytes = a_bytes;
  k.b_bytes = b_bytes;
  k.classes = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(a_cls) << 8) |
      static_cast<std::uint16_t>(b_cls));
  return k;
}

class DecisionCache {
 public:
  struct Options {
    std::size_t shards = 8;      ///< rounded up to a power of two
    std::size_t capacity = 4096; ///< max entries per table (pair and solo)
    std::uint64_t knob_digest = 0;
    /// Registry for hit/miss/evict/invalidate counters. Null: counters
    /// stay internal to stats() only.
    obs::MetricsRegistry* metrics = nullptr;
  };

  DecisionCache();
  explicit DecisionCache(Options opts);

  /// (Re)binds the registry-mirror counters. The dispatcher learns its
  /// registry via set_obs after construction, so the mirrors attach
  /// lazily; internal stats() counters run from the start regardless.
  void attach_metrics(obs::MetricsRegistry* metrics);

  /// Current invalidation epoch. Capture it *before* computing a value to
  /// insert; the insert is dropped if an invalidation landed in between.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  std::optional<mapreduce::PairConfig> pair_lookup(const PairDecisionKey& k);
  void pair_insert(const PairDecisionKey& k, const mapreduce::PairConfig& v,
                   std::uint64_t computed_epoch, bool speculative = false);

  /// Presence probe that touches neither the counters nor the LRU order —
  /// the prefetcher uses it to skip speculation that is already cached.
  bool pair_contains(const PairDecisionKey& k);

  std::optional<mapreduce::AppConfig> solo_lookup(const SoloDecisionKey& k);
  void solo_insert(const SoloDecisionKey& k, const mapreduce::AppConfig& v,
                   std::uint64_t computed_epoch, bool speculative = false);

  /// Drops every entry and bumps the epoch (swap_tuner hook).
  void invalidate();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t speculative_inserts = 0;
    /// Speculative entries that served at least one hit (counted once).
    std::uint64_t prefetch_wins = 0;
    /// Inserts rejected because an invalidation raced the compute.
    std::uint64_t stale_rejects = 0;

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  Stats stats() const;

  /// Live entries across both tables and all shards.
  std::size_t size() const;
  std::size_t shards() const { return pair_.shards.size(); }
  std::size_t capacity() const { return opts_.capacity; }

 private:
  template <typename K, typename V>
  struct Table {
    struct Entry {
      V value{};
      typename std::list<K>::iterator lru;
      bool speculative = false;
    };
    struct KeyHash {
      std::uint64_t seed = 0;
      std::size_t operator()(const K& k) const;
    };
    struct Shard {
      mutable std::mutex mu;
      std::unordered_map<K, Entry, KeyHash> map;
      std::list<K> recency;  ///< front = most recently used
    };
    std::vector<Shard> shards;
    std::size_t shard_cap = 0;

    Shard& shard_for(const K& k, std::uint64_t seed);
  };

  template <typename K, typename V>
  std::optional<V> lookup(Table<K, V>& t, const K& k);
  template <typename K, typename V>
  void insert(Table<K, V>& t, const K& k, const V& v,
              std::uint64_t computed_epoch, bool speculative);

  Options opts_;
  Table<PairDecisionKey, mapreduce::PairConfig> pair_;
  Table<SoloDecisionKey, mapreduce::AppConfig> solo_;
  std::atomic<std::uint64_t> epoch_{0};

  struct Counters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> invalidations{0};
    std::atomic<std::uint64_t> speculative_inserts{0};
    std::atomic<std::uint64_t> prefetch_wins{0};
    std::atomic<std::uint64_t> stale_rejects{0};
  };
  mutable Counters n_;

  // Optional registry mirrors, resolved once at construction.
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_invalidations_ = nullptr;
  obs::Counter* m_prefetch_wins_ = nullptr;
};

}  // namespace ecost::serve
