// Asynchronous decision prefetch (ISSUE 10 tentpole part 2). When the
// daemon runs with --serve-threads >= 2, classification hints flow from the
// admission path into this background worker, which speculatively warms
// every memo layer the next decisions will consult:
//
//   - the shared ground-truth profile cache (one exact learning-period
//     probe per distinct application),
//   - the EvalCache run_solo entry behind each duration estimate
//     (EvalCache::prefetch_solo fans distinct misses across the global
//     thread pool — PR 5's batch fill machinery),
//   - the DecisionCache solo optimum for the hinted (class, size), and
//   - speculative STP pair predictions against a sliding window of
//     recently hinted applications (both argument orders — the head/
//     partner roles are not symmetric).
//
// Everything here is *speculation about wall time only*: a prefetched
// entry holds exactly the value the scheduling thread would compute inline
// (pair predictions are pure in the operand identities; speculative
// classification runs on noise-free truth features, and a job whose noisy
// classification disagrees simply misses and computes inline). Decision
// trajectories are bit-identical with the prefetcher on or off; CI pins
// this. Tuner swaps are safe by construction: fills carry the DecisionCache
// epoch captured before the tuner pointer was read, so a fill raced by
// swap_tuner is rejected, never published (set_tuner must be called before
// the invalidation — see swap_tuner).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/profiling.hpp"
#include "core/stp.hpp"
#include "mapreduce/eval_cache.hpp"
#include "serve/decision_cache.hpp"
#include "util/mpsc_ring.hpp"

namespace ecost::serve {

/// Memoized ground-truth learning-period signatures, shared between the
/// scheduling thread and the prefetcher. References stay valid for the
/// cache's lifetime (node-based map, entries never erased).
class TruthCache {
 public:
  const perfmon::FeatureVector& get_or_profile(
      const mapreduce::NodeEvaluator& eval, const mapreduce::AppProfile& app,
      std::uint64_t digest);

 private:
  std::mutex mu_;
  std::unordered_map<std::uint64_t, perfmon::FeatureVector> map_;
};

class Prefetcher {
 public:
  struct Options {
    std::size_t queue_capacity = 1024;  ///< pending hints; overflow drops
    std::size_t partner_window = 8;     ///< recent distinct apps to pair
    /// Participant cap for the EvalCache batch warm (0 = whole pool).
    unsigned fill_threads = 0;
  };

  /// Borrows everything; all referents must outlive the prefetcher.
  Prefetcher(const mapreduce::NodeEvaluator& eval,
             mapreduce::EvalCache& cache, const core::TrainingData& td,
             DecisionCache& dcache, TruthCache& truth,
             const core::SelfTuner& stp, Options opts);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Hands the worker one likely-upcoming job. Non-blocking; a full queue
  /// drops the hint (prefetch is advisory, never backpressure).
  void hint(const mapreduce::JobSpec& job);

  /// Atomically points future speculation at a new tuner. Call *before*
  /// DecisionCache::invalidate() so an epoch-fresh fill can only have read
  /// the fresh tuner.
  void set_tuner(const core::SelfTuner& stp) {
    stp_.store(&stp, std::memory_order_release);
  }

  /// Blocks until every hint enqueued so far has been processed (test
  /// hook; the daemon never waits on speculation).
  void quiesce();

  struct Stats {
    std::uint64_t hinted = 0;
    std::uint64_t dropped = 0;       ///< queue-full hints shed
    std::uint64_t solo_fills = 0;    ///< DecisionCache solo inserts issued
    std::uint64_t pair_fills = 0;    ///< speculative pair predictions
    std::uint64_t eval_warms = 0;    ///< EvalCache run_solo warm batches
  };
  Stats stats() const;

 private:
  void run();
  void process(const mapreduce::JobSpec& job);

  const mapreduce::NodeEvaluator& eval_;
  mapreduce::EvalCache& cache_;
  const core::TrainingData& td_;
  DecisionCache& dcache_;
  TruthCache& truth_;
  std::atomic<const core::SelfTuner*> stp_;
  Options opts_;

  MpscRing<mapreduce::JobSpec> ring_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> processed_{0};

  /// Worker-private sliding window of recent distinct operands.
  struct Seen {
    std::uint64_t digest = 0;
    mapreduce::JobSpec job;
    perfmon::FeatureVector features{};
    mapreduce::AppClass cls{};
  };
  std::deque<Seen> window_;

  std::atomic<std::uint64_t> n_hinted_{0};
  std::atomic<std::uint64_t> n_dropped_{0};
  std::atomic<std::uint64_t> n_solo_fills_{0};
  std::atomic<std::uint64_t> n_pair_fills_{0};
  std::atomic<std::uint64_t> n_eval_warms_{0};

  std::thread worker_;  ///< last member: starts after everything above
};

}  // namespace ecost::serve
