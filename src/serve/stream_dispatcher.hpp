// Online ECoST scheduling over a live submission stream (the daemon's
// policy brain). Where EcostDispatcher is handed its whole workload up
// front, this dispatcher discovers jobs as they cross the SubmitQueue and
// makes every decision with only the information available at that moment:
//
//   1. Admission — submissions whose arrival time has been reached enter
//      the wait queue, bounded by `queue_limit` (backpressure: excess stays
//      in the arrival-ordered lookahead buffer; the buffer in turn bounds
//      the SubmitQueue, which blocks the producer).
//   2. Online classification — each admitted job is classified from the
//      first perfmon counter samples of its learning period: one noisy
//      multiplexed PMU run (seeded per job) against the memoized
//      ground-truth signature, k-NN through the trained classifier. No
//      full profiling campaign, exactly the Figure 4 Step-1 story.
//   3. Pair formation under churn — the decision-tree pairing of
//      EcostDispatcher (head reservation, small-job leap-forward,
//      backfilling survivors), re-run at every membership change.
//   4. Degradation ladder — two rungs below fully-tuned operation:
//        a. tuner over budget: the modeled tuner backlog exceeds
//           `tuner_budget_s`, so the decision is placed immediately with
//           the untuned default configuration instead of queueing behind
//           the tuner (counted in serve.degraded);
//        b. admission deadline: a job that has waited `deadline_s` is
//           placed into the first free slot regardless of pairing rank or
//           leap eligibility (counted in serve.deadline_placements). The
//           dispatcher schedules its own wake-up through next_arrival_s so
//           the engine re-plans exactly when the oldest job expires.
//
// Everything observable is simulated-time-deterministic: wall-clock feeder
// pace, drain chunking, and thread scheduling cannot change a single
// decision, because plan() always waits until the lookahead extends past
// `now` (or the stream closed) before acting. CI gates exact decision
// counts on this property.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cluster_engine.hpp"
#include "core/dataset_builder.hpp"
#include "core/pairing.hpp"
#include "core/stp.hpp"
#include "core/wait_queue.hpp"
#include "mapreduce/eval_cache.hpp"
#include "serve/decision_cache.hpp"
#include "serve/prefetcher.hpp"
#include "serve/submit_queue.hpp"

namespace ecost::serve {

struct ServeOptions {
  /// Hard bound on simulated queue wait: a job that has waited this long is
  /// placed untuned into the first free slot, ahead of any pairing logic.
  double deadline_s = 3600.0;
  /// Wait-queue depth that triggers admission backpressure.
  std::size_t queue_limit = 64;
  /// Modeled wall cost of one tuned (STP) decision, in simulated seconds —
  /// the paper's learning-period + prediction overhead (Figure 8).
  double tuner_cost_s = 2.0;
  /// Max modeled tuner backlog before decisions degrade to untuned
  /// placement instead of queueing behind the tuner.
  double tuner_budget_s = 30.0;
  /// PMU runs averaged for online classification (1 = first counter
  /// samples only, the streaming default; EcostDispatcher's offline path
  /// uses 3).
  int classify_runs = 1;
  /// Seed folded with each job id for the per-job sampling noise.
  std::uint64_t profile_seed = 9000;
  /// Serving worker threads. 1 = fully serial (the bench default on small
  /// hosts). >= 2 turns on (a) batched classification of due arrivals via
  /// parallel_for and (b) the async prefetcher. Decisions are identical at
  /// every setting — only wall time changes (CI pins this).
  int serve_threads = 1;
  /// Decision memoization (DecisionCache). Off = every rung recomputes
  /// inline; decisions are identical either way.
  bool decision_cache = true;
  /// Decision-cache geometry. Shard count is part of the bench identity
  /// (check_bench refuses cross-shard-count compares).
  std::size_t cache_shards = 8;
  std::size_t cache_capacity = 4096;
  /// Speculative warm-up of truth/EvalCache/decision entries on a
  /// background thread. Only effective when serve_threads >= 2.
  bool prefetch = true;
};

class StreamDispatcher final : public core::Dispatcher {
 public:
  /// How one placement decision was made — the degradation rung it sits on.
  enum class DecisionKind : std::uint8_t {
    Pair,      ///< tuned pair (STP prediction)
    Solo,      ///< head placed alone, tuned solo config
    Backfill,  ///< tuned partner for a running survivor
    Degraded,  ///< tuner over budget: untuned default config
    Deadline,  ///< admission deadline hit: untuned, pairing bypassed
  };

  struct Decision {
    double t_s = 0.0;
    std::uint64_t job_id = 0;
    int node = -1;
    mapreduce::AppConfig cfg;
    DecisionKind kind = DecisionKind::Solo;
    std::uint64_t partner_id = 0;  ///< meaningful for Pair/Backfill
    double waited_s = 0.0;         ///< admission latency of this job
  };

  /// Borrows everything; `queue` is the live submission stream (producers
  /// push concurrently, this dispatcher is the single consumer). `eval`
  /// backs the memoized learning-period runs and duration estimates.
  StreamDispatcher(const mapreduce::NodeEvaluator& eval,
                   mapreduce::EvalCache& cache, const core::TrainingData& td,
                   const core::SelfTuner& stp, SubmitQueue& queue,
                   ServeOptions opts = {});

  std::vector<core::Placement> plan(const core::ClusterView& view,
                                    double now_s) override;

  std::optional<mapreduce::AppConfig> retune(
      const core::RunningJob& running,
      std::span<const core::RunningJob> others) override;

  double next_arrival_s(double now_s) const override;

  /// Runtime policy swap: atomically replace the self-tuner the next
  /// decision consults (e.g. hot-swap a retrained model). Borrowed; must
  /// outlive the dispatcher. Repoints the prefetcher *before* invalidating
  /// the decision cache, so an in-flight speculative fill can only pair a
  /// stale epoch with the fresh tuner — rejected on insert, never
  /// published.
  void swap_tuner(const core::SelfTuner& stp);

  std::span<const Decision> decisions() const { return decisions_; }

  /// Decision memo telemetry (hits/misses/evictions/prefetch wins).
  DecisionCache::Stats cache_stats() const { return dcache_.stats(); }
  /// Prefetcher telemetry; zeroes when the prefetcher is off.
  Prefetcher::Stats prefetch_stats() const {
    return prefetcher_ ? prefetcher_->stats() : Prefetcher::Stats{};
  }

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t pairs = 0;
    std::uint64_t solos = 0;
    std::uint64_t backfills = 0;
    std::uint64_t degraded = 0;
    std::uint64_t deadline_placements = 0;
    std::uint64_t deferred = 0;  ///< admissions delayed by backpressure
    double max_wait_s = 0.0;     ///< worst admission latency seen
    std::uint64_t decisions() const {
      return pairs + solos + backfills + degraded + deadline_placements;
    }
  };
  const Stats& stats() const { return stats_; }

  std::size_t queued() const { return queue_.size(); }

 private:
  /// Blocks until the lookahead extends strictly past `now_s` or the
  /// stream is closed — the determinism barrier between the wall-clock
  /// producer and the simulated-time consumer.
  void ensure_lookahead(double now_s) const;

  /// Moves due submissions (arrival <= now) from the lookahead into the
  /// wait queue, profiling and classifying each, honoring `queue_limit`.
  /// With serve_threads >= 2 the classification of one batch runs through
  /// parallel_for; admission order, stats, and trace events stay serial.
  void admit(double now_s);

  /// Online learning-period measurement: memoized ground truth + one
  /// seeded noisy PMU pass; returns the populated job info and estimate.
  /// Thread-safe (called concurrently by the admission batch).
  core::QueuedJob classify(const Submission& s);

  /// True when the modeled tuner can take another decision at `now_s`
  /// within budget; advances the tuner clock when it can.
  bool tuner_within_budget(double now_s);

  mapreduce::AppConfig untuned_config() const;
  mapreduce::AppConfig solo_config(const core::AppInfo& info);

  /// Memoized STP pair prediction: decision-cache hit or inline predict +
  /// fill. Exact — see DESIGN.md §5i for the key argument.
  mapreduce::PairConfig pair_config(const core::QueuedJob& head,
                                    const core::QueuedJob& partner);
  mapreduce::PairConfig pair_config(const core::RunningJob& survivor,
                                    const core::QueuedJob& partner);

  void record(const core::QueuedJob& job, double now_s, int node,
              const mapreduce::AppConfig& cfg, DecisionKind kind,
              std::uint64_t partner_id);

  /// Resolves metric handles once per registry (set_obs happens after
  /// construction, so handles bind lazily on first use).
  void bind_metrics();

  const mapreduce::NodeEvaluator& eval_;
  mapreduce::EvalCache& cache_;
  const core::TrainingData& td_;
  const core::SelfTuner* stp_;
  SubmitQueue& submissions_;
  ServeOptions opts_;
  core::PairingPolicy policy_;

  // Single-consumer state; mutable because next_arrival_s (const in the
  // Dispatcher interface) must also be able to pull the lookahead forward.
  mutable std::deque<Submission> lookahead_;
  mutable std::vector<Submission> drain_buf_;
  mutable bool stream_done_ = false;

  core::WaitQueue queue_;
  /// Ids below this were already counted as deferred (ids are stream-ordered,
  /// so one watermark counts each job's deferral exactly once).
  std::uint64_t deferral_mark_ = 0;
  std::unordered_map<std::uint64_t, mapreduce::AppConfig> pending_retune_;
  TruthCache truth_;
  DecisionCache dcache_;
  mutable std::unique_ptr<Prefetcher> prefetcher_;
  double tuner_free_s_ = 0.0;  ///< when the modeled tuner next idles
  std::vector<Decision> decisions_;
  Stats stats_;
  // plan() scratch, reused across calls (one plan per engine batch).
  std::vector<int> order_;             ///< rack-major node order
  std::vector<std::size_t> used_;      ///< slots taken by this round's plan
  std::vector<Submission> admit_buf_;  ///< one admission batch
  std::vector<core::QueuedJob> classified_buf_;

  // Metric handles, resolved once per registry (see bind_metrics). The
  // by-string registry lookups (map + mutex) were ~6% of serve wall time.
  obs::MetricsRegistry* bound_metrics_ = nullptr;
  obs::Counter* c_classified_ = nullptr;
  obs::Counter* c_classify_us_ = nullptr;
  obs::Counter* c_admitted_ = nullptr;
  obs::Counter* c_deferred_ = nullptr;
  obs::Counter* c_kind_[5] = {};  ///< indexed by DecisionKind
  obs::Histogram* h_admission_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_backlog_depth_ = nullptr;
};

}  // namespace ecost::serve
