#include "serve/decision_cache.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "core/dataset_builder.hpp"
#include "util/error.hpp"

namespace ecost::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFFu;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_config(std::uint64_t h, const mapreduce::AppConfig& c) {
  h = fnv_mix(h, static_cast<std::uint64_t>(c.freq));
  h = fnv_mix(h, static_cast<std::uint64_t>(c.block_mib));
  return fnv_mix(h, static_cast<std::uint64_t>(c.mappers));
}

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t knob_space_digest(const core::TrainingData& td) {
  std::uint64_t h = kFnvOffset;
  for (const auto& [pair, cfgs] : td.candidate_configs) {
    h = fnv_mix(h, static_cast<std::uint64_t>(pair.first));
    h = fnv_mix(h, static_cast<std::uint64_t>(pair.second));
    h = fnv_mix(h, cfgs.size());
    for (const mapreduce::PairConfig& pc : cfgs) {
      h = fnv_config(h, pc.first);
      h = fnv_config(h, pc.second);
    }
  }
  for (const auto& [key, cfg] : td.solo_db) {
    h = fnv_mix(h, static_cast<std::uint64_t>(key.cls));
    h = fnv_mix(h, std::bit_cast<std::uint64_t>(key.size_gib));
    h = fnv_config(h, cfg);
  }
  return h;
}

mapreduce::AppConfig solo_optimum(const core::TrainingData& td,
                                  mapreduce::AppClass cls, double size_gib) {
  const mapreduce::AppConfig* best = &kServeDefaultCfg;
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& [key, cfg] : td.solo_db) {
    if (key.cls != cls) continue;
    const double d = std::abs(std::log(std::max(key.size_gib, 1e-6) /
                                       std::max(size_gib, 1e-6)));
    if (d < best_d) {
      best_d = d;
      best = &cfg;
    }
  }
  return *best;
}

template <typename K, typename V>
std::size_t DecisionCache::Table<K, V>::KeyHash::operator()(
    const K& k) const {
  std::uint64_t h = fnv_mix(kFnvOffset, seed);
  if constexpr (std::is_same_v<K, PairDecisionKey>) {
    h = fnv_mix(h, k.a_digest);
    h = fnv_mix(h, k.b_digest);
    h = fnv_mix(h, k.a_bytes);
    h = fnv_mix(h, k.b_bytes);
    h = fnv_mix(h, k.classes);
  } else {
    h = fnv_mix(h, k.cls);
    h = fnv_mix(h, k.bytes);
  }
  return static_cast<std::size_t>(h);
}

template <typename K, typename V>
typename DecisionCache::Table<K, V>::Shard&
DecisionCache::Table<K, V>::shard_for(const K& k, std::uint64_t seed) {
  const std::size_t h = KeyHash{seed}(k);
  // The low bits pick the map bucket inside the shard; use high bits here
  // so the two selections stay independent.
  return shards[(h >> 48) & (shards.size() - 1)];
}

DecisionCache::DecisionCache() : DecisionCache(Options{}) {}

DecisionCache::DecisionCache(Options opts) : opts_(opts) {
  ECOST_REQUIRE(opts_.shards >= 1, "decision cache needs >= 1 shard");
  ECOST_REQUIRE(opts_.capacity >= 1, "decision cache needs capacity >= 1");
  const std::size_t n = next_pow2(opts_.shards);
  opts_.shards = n;
  const std::size_t per_shard = (opts_.capacity + n - 1) / n;
  pair_.shards = std::vector<decltype(pair_)::Shard>(n);
  pair_.shard_cap = per_shard;
  solo_.shards = std::vector<decltype(solo_)::Shard>(n);
  solo_.shard_cap = per_shard;
  attach_metrics(opts_.metrics);
}

void DecisionCache::attach_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  m_hits_ = &metrics->counter("serve.dcache_hits");
  m_misses_ = &metrics->counter("serve.dcache_misses");
  m_evictions_ = &metrics->counter("serve.dcache_evictions");
  m_invalidations_ = &metrics->counter("serve.dcache_invalidations");
  m_prefetch_wins_ = &metrics->counter("serve.dcache_prefetch_wins");
}

template <typename K, typename V>
std::optional<V> DecisionCache::lookup(Table<K, V>& t, const K& k) {
  auto& shard = t.shard_for(k, opts_.knob_digest);
  std::lock_guard lock(shard.mu);
  const auto it = shard.map.find(k);
  if (it == shard.map.end()) {
    n_.misses.fetch_add(1, std::memory_order_relaxed);
    if (m_misses_ != nullptr) m_misses_->add();
    return std::nullopt;
  }
  shard.recency.splice(shard.recency.begin(), shard.recency, it->second.lru);
  if (it->second.speculative) {
    it->second.speculative = false;  // count the win once per entry
    n_.prefetch_wins.fetch_add(1, std::memory_order_relaxed);
    if (m_prefetch_wins_ != nullptr) m_prefetch_wins_->add();
  }
  n_.hits.fetch_add(1, std::memory_order_relaxed);
  if (m_hits_ != nullptr) m_hits_->add();
  return it->second.value;
}

template <typename K, typename V>
void DecisionCache::insert(Table<K, V>& t, const K& k, const V& v,
                           std::uint64_t computed_epoch, bool speculative) {
  auto& shard = t.shard_for(k, opts_.knob_digest);
  std::lock_guard lock(shard.mu);
  // An invalidation that landed after the value was computed makes it
  // stale — the tuner it came from is gone. The epoch is re-read under the
  // shard lock, and invalidate() bumps it while holding every shard lock,
  // so a stale value can never be published.
  if (epoch_.load(std::memory_order_acquire) != computed_epoch) {
    n_.stale_rejects.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto it = shard.map.find(k);
  if (it != shard.map.end()) {
    shard.recency.splice(shard.recency.begin(), shard.recency,
                         it->second.lru);
    it->second.value = v;
    return;
  }
  if (shard.map.size() >= t.shard_cap) {
    const K& victim = shard.recency.back();
    shard.map.erase(victim);
    shard.recency.pop_back();
    n_.evictions.fetch_add(1, std::memory_order_relaxed);
    if (m_evictions_ != nullptr) m_evictions_->add();
  }
  shard.recency.push_front(k);
  shard.map.emplace(
      k, typename Table<K, V>::Entry{v, shard.recency.begin(), speculative});
  if (speculative) {
    n_.speculative_inserts.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<mapreduce::PairConfig> DecisionCache::pair_lookup(
    const PairDecisionKey& k) {
  return lookup(pair_, k);
}

void DecisionCache::pair_insert(const PairDecisionKey& k,
                                const mapreduce::PairConfig& v,
                                std::uint64_t computed_epoch,
                                bool speculative) {
  insert(pair_, k, v, computed_epoch, speculative);
}

bool DecisionCache::pair_contains(const PairDecisionKey& k) {
  auto& shard = pair_.shard_for(k, opts_.knob_digest);
  std::lock_guard lock(shard.mu);
  return shard.map.contains(k);
}

std::optional<mapreduce::AppConfig> DecisionCache::solo_lookup(
    const SoloDecisionKey& k) {
  return lookup(solo_, k);
}

void DecisionCache::solo_insert(const SoloDecisionKey& k,
                                const mapreduce::AppConfig& v,
                                std::uint64_t computed_epoch,
                                bool speculative) {
  insert(solo_, k, v, computed_epoch, speculative);
}

void DecisionCache::invalidate() {
  // Take every shard lock (fixed order: pair table then solo, index order)
  // so the epoch bump and the clears are one atomic step relative to any
  // insert, which holds its shard lock across its epoch check.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(pair_.shards.size() + solo_.shards.size());
  for (auto& s : pair_.shards) locks.emplace_back(s.mu);
  for (auto& s : solo_.shards) locks.emplace_back(s.mu);
  epoch_.fetch_add(1, std::memory_order_release);
  for (auto& s : pair_.shards) {
    s.map.clear();
    s.recency.clear();
  }
  for (auto& s : solo_.shards) {
    s.map.clear();
    s.recency.clear();
  }
  n_.invalidations.fetch_add(1, std::memory_order_relaxed);
  if (m_invalidations_ != nullptr) m_invalidations_->add();
}

DecisionCache::Stats DecisionCache::stats() const {
  Stats s;
  s.hits = n_.hits.load(std::memory_order_relaxed);
  s.misses = n_.misses.load(std::memory_order_relaxed);
  s.evictions = n_.evictions.load(std::memory_order_relaxed);
  s.invalidations = n_.invalidations.load(std::memory_order_relaxed);
  s.speculative_inserts =
      n_.speculative_inserts.load(std::memory_order_relaxed);
  s.prefetch_wins = n_.prefetch_wins.load(std::memory_order_relaxed);
  s.stale_rejects = n_.stale_rejects.load(std::memory_order_relaxed);
  return s;
}

std::size_t DecisionCache::size() const {
  std::size_t total = 0;
  for (const auto& s : pair_.shards) {
    std::lock_guard lock(s.mu);
    total += s.map.size();
  }
  for (const auto& s : solo_.shards) {
    std::lock_guard lock(s.mu);
    total += s.map.size();
  }
  return total;
}

}  // namespace ecost::serve
