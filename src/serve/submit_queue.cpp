#include "serve/submit_queue.hpp"

#include "util/error.hpp"

namespace ecost::serve {

SubmitQueue::SubmitQueue(std::size_t capacity) : cap_(capacity) {
  ECOST_REQUIRE(capacity >= 1, "submit queue capacity must be >= 1");
}

bool SubmitQueue::submit(Submission s) {
  std::unique_lock lock(mu_);
  if (q_.size() >= cap_ && !closed_) ++blocked_;
  can_push_.wait(lock, [&] { return q_.size() < cap_ || closed_; });
  if (closed_) return false;
  q_.push_back(std::move(s));
  ++accepted_;
  can_pop_.notify_one();
  return true;
}

bool SubmitQueue::try_submit(Submission s) {
  std::lock_guard lock(mu_);
  if (closed_ || q_.size() >= cap_) return false;
  q_.push_back(std::move(s));
  ++accepted_;
  can_pop_.notify_one();
  return true;
}

std::size_t SubmitQueue::drain(std::vector<Submission>& out) {
  std::lock_guard lock(mu_);
  const std::size_t n = q_.size();
  for (Submission& s : q_) out.push_back(std::move(s));
  q_.clear();
  if (n > 0) can_push_.notify_all();
  return n;
}

bool SubmitQueue::wait_drain(std::vector<Submission>& out) {
  std::unique_lock lock(mu_);
  can_pop_.wait(lock, [&] { return !q_.empty() || closed_; });
  if (q_.empty()) return false;  // closed and empty: end of stream
  for (Submission& s : q_) out.push_back(std::move(s));
  q_.clear();
  can_push_.notify_all();
  return true;
}

void SubmitQueue::close() {
  std::lock_guard lock(mu_);
  closed_ = true;
  can_push_.notify_all();
  can_pop_.notify_all();
}

bool SubmitQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t SubmitQueue::size() const {
  std::lock_guard lock(mu_);
  return q_.size();
}

std::uint64_t SubmitQueue::accepted() const {
  std::lock_guard lock(mu_);
  return accepted_;
}

std::uint64_t SubmitQueue::blocked() const {
  std::lock_guard lock(mu_);
  return blocked_;
}

}  // namespace ecost::serve
