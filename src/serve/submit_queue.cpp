#include "serve/submit_queue.hpp"

namespace ecost::serve {

SubmitQueue::SubmitQueue(std::size_t capacity) : ring_(capacity) {}

void SubmitQueue::wake_consumer() {
  if (pop_waiters_.load(std::memory_order_seq_cst) > 0) {
    // The lock orders this notify after the sleeper's predicate re-check:
    // either the sleeper sees the new item before parking, or it parks
    // first and this wakes it. Without the lock the notify could fire
    // between check and park and be lost.
    std::lock_guard lock(mu_);
    can_pop_.notify_one();
  }
}

void SubmitQueue::wake_producers() {
  if (push_waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard lock(mu_);
    can_push_.notify_all();
  }
}

bool SubmitQueue::submit(Submission s) {
  if (try_submit(s)) return true;
  if (closed_.load(std::memory_order_acquire)) return false;
  blocked_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(mu_);
  push_waiters_.fetch_add(1, std::memory_order_seq_cst);
  for (;;) {
    if (closed_.load(std::memory_order_acquire)) {
      push_waiters_.fetch_sub(1, std::memory_order_seq_cst);
      return false;
    }
    // Re-try under the lock: a concurrent drain may have made room between
    // the failed fast path and parking.
    if (ring_.try_push(std::move(s))) {
      push_waiters_.fetch_sub(1, std::memory_order_seq_cst);
      accepted_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      wake_consumer();
      return true;
    }
    can_push_.wait(lock);
  }
}

bool SubmitQueue::try_submit(Submission s) {
  if (closed_.load(std::memory_order_acquire)) return false;
  if (!ring_.try_push(std::move(s))) return false;
  accepted_.fetch_add(1, std::memory_order_relaxed);
  wake_consumer();
  return true;
}

std::size_t SubmitQueue::drain(std::vector<Submission>& out) {
  const std::size_t n = ring_.drain(out);
  if (n > 0) wake_producers();
  return n;
}

bool SubmitQueue::wait_drain(std::vector<Submission>& out) {
  std::size_t n = ring_.drain(out);
  if (n > 0) {
    wake_producers();
    return true;
  }
  if (closed_.load(std::memory_order_acquire)) {
    // Closed producers may have published between the drain above and the
    // flag read; serve those out before reporting end of stream.
    n = ring_.drain(out);
    if (n > 0) wake_producers();
    return n > 0;
  }
  std::unique_lock lock(mu_);
  pop_waiters_.fetch_add(1, std::memory_order_seq_cst);
  for (;;) {
    n = ring_.drain(out);
    if (n > 0) {
      pop_waiters_.fetch_sub(1, std::memory_order_seq_cst);
      lock.unlock();
      wake_producers();
      return true;
    }
    if (closed_.load(std::memory_order_acquire)) {
      pop_waiters_.fetch_sub(1, std::memory_order_seq_cst);
      return false;
    }
    can_pop_.wait(lock);
  }
}

void SubmitQueue::close() {
  closed_.store(true, std::memory_order_seq_cst);
  std::lock_guard lock(mu_);
  can_push_.notify_all();
  can_pop_.notify_all();
}

}  // namespace ecost::serve
