// ecostd's engine room: owns the submission queue, the streaming
// dispatcher, and one ClusterEngine run per replayed trace, with a feeder
// thread standing in for the network front end. The daemon is the
// integration point the `ecostd` binary and `ecostctl serve` wrap: callers
// hand it a pre-generated arrival trace (workloads::ArrivalProcess output)
// and get back a ServeReport combining the engine outcome with the
// admission-latency distribution and decision-throughput numbers that CI
// gates.
//
// Determinism contract: the report's simulated-time fields (decision
// counts, admission latencies, makespan, energy, events) depend only on
// the trace, the training data, and the serve options — never on feeder
// pace or host load. Only wall_s and decisions_per_s are wall-clock
// measurements.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/cluster_engine.hpp"
#include "serve/stream_dispatcher.hpp"
#include "sim/topology.hpp"
#include "workloads/arrivals.hpp"

namespace ecost::serve {

struct DaemonOptions {
  int nodes = 8;
  int slots_per_node = 2;
  /// SubmitQueue capacity — how far (in submissions) the front end may run
  /// ahead of the scheduling loop before submit() blocks.
  std::size_t submit_capacity = 256;
  /// Racked fabric to serve on; unset = ideal flat fabric over `nodes`
  /// (the paper testbed shape). When set, `nodes` is taken from the
  /// topology and the flow network is modeled.
  std::optional<sim::Topology> topology;
  ServeOptions serve;
};

/// Everything one serve run produced, simulated and measured.
struct ServeReport {
  core::ClusterOutcome outcome;  ///< makespan, energy, events, placements
  StreamDispatcher::Stats stats;
  std::uint64_t jobs = 0;        ///< submissions replayed
  std::uint64_t producer_blocked = 0;  ///< submits that hit backpressure

  // Placement wait (simulated seconds), exact over all decisions: how long
  // each job sat in the wait queue between submit and placement. This is
  // NOT an admission-deadline guarantee — under saturation the deadline
  // rung still needs a free slot, so the tail can exceed deadline_s (see
  // DESIGN.md §5i).
  double p50_placement_wait_s = 0.0;
  double p99_placement_wait_s = 0.0;
  double max_placement_wait_s = 0.0;

  // Wall-clock throughput of the scheduling loop (host-dependent).
  double wall_s = 0.0;
  double decisions_per_s = 0.0;

  // Serving-hot-path telemetry (ISSUE 10): decision-memo and prefetcher
  // effectiveness. Wall-time-only signals — the trajectory is identical
  // with the cache and prefetcher off.
  DecisionCache::Stats cache;
  Prefetcher::Stats prefetch;

  std::vector<StreamDispatcher::Decision> decisions;  ///< time order
};

class ServeDaemon {
 public:
  /// Borrows everything; all must outlive the daemon.
  ServeDaemon(const mapreduce::NodeEvaluator& eval, mapreduce::EvalCache& cache,
              const core::TrainingData& td, const core::SelfTuner& stp,
              DaemonOptions opts = {});

  /// Observability sinks for the engine run and the dispatcher's decision
  /// events (same contract as ClusterEngine::set_obs).
  void set_obs(obs::TraceRecorder* trace, std::uint32_t pid,
               obs::MetricsRegistry* metrics = nullptr);

  /// Replays one arrival trace end to end: a feeder thread submits each
  /// arrival through the bounded queue (blocking under backpressure, closing
  /// the stream after the last), while the engine drives the streaming
  /// dispatcher on this thread until the cluster drains.
  ServeReport run_trace(std::span<const workloads::Arrival> arrivals);

 private:
  const mapreduce::NodeEvaluator& eval_;
  mapreduce::EvalCache& cache_;
  const core::TrainingData& td_;
  const core::SelfTuner& stp_;
  DaemonOptions opts_;
  obs::TraceRecorder* trace_ = nullptr;
  std::uint32_t pid_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace ecost::serve
