// The daemon's front door: a bounded, thread-safe submission queue between
// arrival producers (trace replayers, future RPC handlers) and the single
// scheduling thread that drains it.
//
// Storage is a lock-free MPSC ring (util/mpsc_ring): producers publish with
// one CAS + release store and the consumer drains in push order without
// ever taking a mutex on the fast path. The mutex below exists only for the
// *blocking* edges — a producer facing a full ring, a consumer facing an
// empty one — and is taken by the fast path only when a sleeper count says
// someone is actually parked (an eventcount-lite, so the uncontended
// schedule loop never serializes on it).
//
// Backpressure is structural: `submit` blocks while the queue is full, so a
// producer can never run unboundedly ahead of a scheduling loop that has
// fallen behind — the producer is throttled to the consumer's pace instead
// of growing an unbounded backlog. `try_submit` is the non-blocking variant
// for producers that would rather shed load.
//
// Shutdown is cooperative: `close()` wakes every blocked producer and
// consumer; subsequent submits fail, drains serve out the remaining items
// and then report end-of-stream.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "mapreduce/job.hpp"
#include "util/mpsc_ring.hpp"

namespace ecost::serve {

/// One raw job submission, before the daemon has profiled or classified it.
struct Submission {
  std::uint64_t id = 0;       ///< caller-assigned, unique per stream
  double arrival_s = 0.0;     ///< simulated submission timestamp
  mapreduce::JobSpec job;     ///< the application and its input size
};

class SubmitQueue {
 public:
  /// `capacity` bounds the number of undrained submissions (>= 1).
  explicit SubmitQueue(std::size_t capacity);

  /// Blocks while full. Returns false (and drops `s`) once closed.
  bool submit(Submission s);

  /// Non-blocking submit. False when the queue is full or closed.
  bool try_submit(Submission s);

  /// Appends every currently queued submission to `out` without blocking;
  /// returns the number drained.
  std::size_t drain(std::vector<Submission>& out);

  /// Blocks until at least one submission is available or the queue is
  /// closed; drains everything available into `out`. Returns false only at
  /// end of stream (closed and empty, nothing drained).
  bool wait_drain(std::vector<Submission>& out);

  void close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  std::size_t size() const { return ring_.size_approx(); }
  std::size_t capacity() const { return ring_.capacity(); }

  /// Total submissions that ever entered the queue (accepted submits).
  std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// submit() calls that had to block on a full queue at least once.
  std::uint64_t blocked() const {
    return blocked_.load(std::memory_order_relaxed);
  }

 private:
  /// Wakes the consumer / producers iff someone is actually parked.
  void wake_consumer();
  void wake_producers();

  MpscRing<Submission> ring_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> blocked_{0};

  // Blocking-edge machinery only; never touched while the ring has room
  // (producers) or items (consumer) and nobody sleeps.
  std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::atomic<int> push_waiters_{0};
  std::atomic<int> pop_waiters_{0};
};

}  // namespace ecost::serve
