// The daemon's front door: a bounded, thread-safe submission queue between
// arrival producers (trace replayers, future RPC handlers) and the single
// scheduling thread that drains it.
//
// Backpressure is structural: `submit` blocks while the queue is full, so a
// producer can never run unboundedly ahead of a scheduling loop that has
// fallen behind — the producer is throttled to the consumer's pace instead
// of growing an unbounded backlog. `try_submit` is the non-blocking variant
// for producers that would rather shed load.
//
// Shutdown is cooperative: `close()` wakes every blocked producer and
// consumer; subsequent submits fail, drains serve out the remaining items
// and then report end-of-stream.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "mapreduce/job.hpp"

namespace ecost::serve {

/// One raw job submission, before the daemon has profiled or classified it.
struct Submission {
  std::uint64_t id = 0;       ///< caller-assigned, unique per stream
  double arrival_s = 0.0;     ///< simulated submission timestamp
  mapreduce::JobSpec job;     ///< the application and its input size
};

class SubmitQueue {
 public:
  /// `capacity` bounds the number of undrained submissions (>= 1).
  explicit SubmitQueue(std::size_t capacity);

  /// Blocks while full. Returns false (and drops `s`) once closed.
  bool submit(Submission s);

  /// Non-blocking submit. False when the queue is full or closed.
  bool try_submit(Submission s);

  /// Appends every currently queued submission to `out` without blocking;
  /// returns the number drained.
  std::size_t drain(std::vector<Submission>& out);

  /// Blocks until at least one submission is available or the queue is
  /// closed; drains everything available into `out`. Returns false only at
  /// end of stream (closed and empty, nothing drained).
  bool wait_drain(std::vector<Submission>& out);

  void close();
  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return cap_; }

  /// Total submissions that ever entered the queue (accepted submits).
  std::uint64_t accepted() const;
  /// submit() calls that had to block on a full queue at least once.
  std::uint64_t blocked() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<Submission> q_;
  std::size_t cap_;
  bool closed_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace ecost::serve
