#include "serve/prefetcher.hpp"

#include <array>
#include <utility>

#include "mapreduce/eval_cache.hpp"

namespace ecost::serve {

using mapreduce::JobSpec;

const perfmon::FeatureVector& TruthCache::get_or_profile(
    const mapreduce::NodeEvaluator& eval, const mapreduce::AppProfile& app,
    std::uint64_t digest) {
  {
    std::lock_guard lock(mu_);
    if (const auto it = map_.find(digest); it != map_.end()) {
      return it->second;
    }
  }
  // Compute outside the lock (the probe run is the expensive part); the
  // profile is deterministic per app, so a racing second computation
  // produces an identical value and first-writer-wins is exact.
  const core::ProfilingOptions popts;
  perfmon::FeatureVector fv = core::profile_application_exact(eval, app, popts);
  std::lock_guard lock(mu_);
  return map_.emplace(digest, std::move(fv)).first->second;
}

Prefetcher::Prefetcher(const mapreduce::NodeEvaluator& eval,
                       mapreduce::EvalCache& cache,
                       const core::TrainingData& td, DecisionCache& dcache,
                       TruthCache& truth, const core::SelfTuner& stp,
                       Options opts)
    : eval_(eval),
      cache_(cache),
      td_(td),
      dcache_(dcache),
      truth_(truth),
      stp_(&stp),
      opts_(opts),
      ring_(opts.queue_capacity),
      worker_([this] { run(); }) {}

Prefetcher::~Prefetcher() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(mu_);
    cv_.notify_all();
  }
  worker_.join();
}

void Prefetcher::hint(const JobSpec& job) {
  if (!ring_.try_push(job)) {
    n_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  n_hinted_.fetch_add(1, std::memory_order_relaxed);
  enqueued_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section: orders this notify after the worker's
    // predicate re-check, closing the park/notify race.
    std::lock_guard lock(mu_);
  }
  cv_.notify_one();
}

void Prefetcher::quiesce() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] {
    return processed_.load(std::memory_order_acquire) >=
           enqueued_.load(std::memory_order_acquire);
  });
}

void Prefetcher::run() {
  std::vector<JobSpec> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               ring_.size_approx() > 0;
      });
    }
    if (ring_.drain(batch) == 0) {
      if (stop_.load(std::memory_order_acquire)) return;
      continue;
    }
    // Warm the duration-estimate entries first, fanned across the global
    // pool — by the time the hints are processed serially below, the
    // expensive evaluator work is done.
    if (cache_.prefetch_solo(batch, kServeDefaultCfg, opts_.fill_threads) >
        0) {
      n_eval_warms_.fetch_add(1, std::memory_order_relaxed);
    }
    for (const JobSpec& job : batch) {
      process(job);
      processed_.fetch_add(1, std::memory_order_release);
    }
    {
      std::lock_guard lock(mu_);
    }
    idle_cv_.notify_all();
  }
}

void Prefetcher::process(const JobSpec& job) {
  const std::uint64_t digest = mapreduce::app_digest(job.app);
  const perfmon::FeatureVector& fv =
      truth_.get_or_profile(eval_, job.app, digest);
  const mapreduce::AppClass cls = td_.classifier.classify(fv);

  // Solo-optimum fill: pure in (class, size), so this is never wrong, only
  // possibly keyed under a class the noisy inline classification won't ask
  // for (then it simply never hits).
  {
    const std::uint64_t epoch = dcache_.epoch();
    dcache_.solo_insert(
        {static_cast<std::uint8_t>(cls), job.input_bytes},
        solo_optimum(td_, cls, job.input_gib()), epoch, /*speculative=*/true);
    n_solo_fills_.fetch_add(1, std::memory_order_relaxed);
  }

  // Pair speculation: predict this app against the recent-operand window,
  // in both argument orders (head/partner roles differ). The epoch is
  // captured before the tuner pointer so a fill raced by swap_tuner can
  // only pair a stale epoch with a fresh tuner — rejected on insert.
  for (const Seen& w : window_) {
    if (w.digest == digest && w.job.input_bytes == job.input_bytes) continue;
    const core::AppInfo a{job, fv, cls};
    const core::AppInfo b{w.job, w.features, w.cls};
    const std::array<std::pair<const core::AppInfo*, const core::AppInfo*>,
                     2>
        orders{{{&a, &b}, {&b, &a}}};
    for (const auto& [head, partner] : orders) {
      const PairDecisionKey key = make_pair_key(
          mapreduce::app_digest(head->job.app), head->job.input_bytes,
          head->cls, mapreduce::app_digest(partner->job.app),
          partner->job.input_bytes, partner->cls);
      if (dcache_.pair_contains(key)) continue;
      const std::uint64_t epoch = dcache_.epoch();
      const core::SelfTuner* stp = stp_.load(std::memory_order_acquire);
      const mapreduce::PairConfig pc = stp->predict(*head, *partner);
      dcache_.pair_insert(key, pc, epoch, /*speculative=*/true);
      n_pair_fills_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Window update: keep the most recent distinct operands.
  for (auto it = window_.begin(); it != window_.end(); ++it) {
    if (it->digest == digest && it->job.input_bytes == job.input_bytes) {
      window_.erase(it);
      break;
    }
  }
  window_.push_front(Seen{digest, job, fv, cls});
  while (window_.size() > opts_.partner_window) window_.pop_back();
}

Prefetcher::Stats Prefetcher::stats() const {
  Stats s;
  s.hinted = n_hinted_.load(std::memory_order_relaxed);
  s.dropped = n_dropped_.load(std::memory_order_relaxed);
  s.solo_fills = n_solo_fills_.load(std::memory_order_relaxed);
  s.pair_fills = n_pair_fills_.load(std::memory_order_relaxed);
  s.eval_warms = n_eval_warms_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ecost::serve
