// Arrival-process generators for the streaming scheduling daemon: the
// stand-in for a datacenter's job submission front door. Three shapes:
//
//   * Poisson — memoryless arrivals at a constant mean rate (the classic
//     open-system model);
//   * Diurnal — a Poisson process whose rate follows a day/night sinusoid
//     (peak at mid-period, trough at the edges);
//   * Bursty — a two-state Markov-modulated Poisson process: calm stretches
//     at the base rate interrupted by bursts at `burst_factor` times the
//     rate (the trace the CI soak gate replays).
//
// Every draw goes through one seeded Rng, so a (spec, count) pair always
// produces the same trace — the daemon's decision counts are gated exactly
// in CI, which only works because the input stream is reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mapreduce/app_profile.hpp"
#include "util/rng.hpp"

namespace ecost::workloads {

/// One job submission: when it reaches the datacenter and what it is.
struct Arrival {
  double t_s = 0.0;                ///< absolute submission time
  mapreduce::AppProfile app;       ///< drawn from the studied application mix
  double gib = 1.0;                ///< input size per node
};

enum class ArrivalKind : std::uint8_t { Poisson, Diurnal, Bursty };

std::string to_string(ArrivalKind kind);

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::Poisson;
  double mean_gap_s = 30.0;  ///< mean inter-arrival time at the base rate
  double gib = 1.0;          ///< input size of every generated job
  std::uint64_t seed = 2026;

  // Diurnal shape: rate swings sinusoidally with this period; the trough
  // rate is `trough` times the peak rate.
  double period_s = 86400.0;
  double trough = 0.2;

  // Bursty shape (MMPP): exponential calm/burst phase lengths; inside a
  // burst the arrival rate is multiplied by `burst_factor`.
  double burst_factor = 8.0;
  double burst_len_s = 240.0;
  double calm_len_s = 1200.0;

  /// Named presets: "poisson", "diurnal", "bursty". Throws InvariantError
  /// for an unknown name.
  static ArrivalSpec preset(std::string_view name);
};

/// Generates a deterministic arrival stream, one application at a time,
/// drawn uniformly from the full studied application mix (training and
/// unknown apps alike — the serving scenario of section 7).
class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalSpec spec);

  /// Next arrival; times are strictly increasing.
  Arrival next();

  /// First `count` arrivals of the stream (trace materialization — the
  /// daemon replays such traces through its submission queue).
  std::vector<Arrival> take(std::size_t count);

  const ArrivalSpec& spec() const { return spec_; }

  /// Simulated time of the last generated arrival (0 before any).
  double now_s() const { return t_; }

 private:
  /// Instantaneous arrival rate at time `t` (jobs per second).
  double rate_at(double t);

  ArrivalSpec spec_;
  Rng rng_;
  double t_ = 0.0;
  bool in_burst_ = false;
  double phase_end_s_ = 0.0;  ///< bursty: when the current phase flips
};

}  // namespace ecost::workloads
