// The 11 Hadoop applications studied in the paper (section 2.2):
// micro-benchmarks Wordcount (WC), Sort (ST), Grep (GP), TeraSort (TS) and
// real-world applications Naive Bayes (NB), FP-Growth (FP), Collaborative
// Filtering (CF), SVM, PageRank (PR), HMM, K-Means (KM) — expressed as
// resource-signature profiles calibrated so each lands in its paper class.
//
// Training/testing split follows section 7: the micro-kernels plus FP-Growth
// are the "known" training set; NB, CF, SVM, PR, HMM, KM arrive as unknown
// applications.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "mapreduce/app_profile.hpp"

namespace ecost::workloads {

/// All 11 studied applications, in the paper's order.
std::span<const mapreduce::AppProfile> all_apps();

/// Lookup by abbreviation ("WC", "st", ...; case-insensitive). Throws
/// InvariantError for an unknown abbreviation.
const mapreduce::AppProfile& app_by_abbrev(std::string_view abbrev);

/// Known applications used to build the training database.
std::span<const mapreduce::AppProfile> training_apps();

/// Unknown applications used only for validation (section 7).
std::span<const mapreduce::AppProfile> testing_apps();

/// True when `app` belongs to the training set.
bool is_training_app(const mapreduce::AppProfile& app);

/// All training apps of a given class (possibly empty for exotic specs).
std::vector<const mapreduce::AppProfile*> training_apps_of_class(
    mapreduce::AppClass c);

}  // namespace ecost::workloads
