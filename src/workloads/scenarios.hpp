// The eight workload scenarios of Table 3: each is a stream of 16
// applications with a prescribed class mix, used by the scalability study
// (section 8 / Figure 9).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "mapreduce/app_profile.hpp"
#include "mapreduce/job.hpp"

namespace ecost::workloads {

struct WorkloadScenario {
  std::string name;                       ///< "WS1" .. "WS8"
  std::vector<std::string> app_abbrevs;   ///< 16 entries

  /// "[C,C,H,I,...]" — the class pattern string of Table 3.
  std::string class_pattern() const;

  /// Materializes the 16 jobs with `gib_per_app` input per node each.
  std::vector<mapreduce::JobSpec> jobs(double gib_per_app) const;

  /// Scales the scenario to a racked cluster: cycles the 16-app class
  /// pattern until `count` jobs (so the class mix is preserved at any
  /// size). Used by the 64..4096-node topology sweeps, where 16 jobs
  /// would leave the cluster nearly idle.
  std::vector<mapreduce::JobSpec> scaled_jobs(double gib_per_app,
                                              std::size_t count) const;
};

/// Job count that keeps a cluster of `nodes` busy for a scale sweep: one
/// job per four nodes, floor of 16 (the paper's stream length), rounded up
/// to even so pairing policies (CBM/UB) get whole pairs.
std::size_t scaled_job_count(int nodes);

/// WS1..WS8 as defined in Table 3.
std::span<const WorkloadScenario> all_scenarios();

/// Lookup by name; throws InvariantError when unknown.
const WorkloadScenario& scenario_by_name(const std::string& name);

}  // namespace ecost::workloads
