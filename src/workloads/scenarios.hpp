// The eight workload scenarios of Table 3: each is a stream of 16
// applications with a prescribed class mix, used by the scalability study
// (section 8 / Figure 9).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "mapreduce/app_profile.hpp"
#include "mapreduce/job.hpp"

namespace ecost::workloads {

struct WorkloadScenario {
  std::string name;                       ///< "WS1" .. "WS8"
  std::vector<std::string> app_abbrevs;   ///< 16 entries

  /// "[C,C,H,I,...]" — the class pattern string of Table 3.
  std::string class_pattern() const;

  /// Materializes the 16 jobs with `gib_per_app` input per node each.
  std::vector<mapreduce::JobSpec> jobs(double gib_per_app) const;
};

/// WS1..WS8 as defined in Table 3.
std::span<const WorkloadScenario> all_scenarios();

/// Lookup by name; throws InvariantError when unknown.
const WorkloadScenario& scenario_by_name(const std::string& name);

}  // namespace ecost::workloads
