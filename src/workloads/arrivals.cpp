#include "workloads/arrivals.hpp"

#include <cmath>

#include "util/error.hpp"
#include "workloads/apps.hpp"

namespace ecost::workloads {

std::string to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::Diurnal: return "diurnal";
    case ArrivalKind::Bursty: return "bursty";
  }
  ECOST_CHECK(false, "unreachable arrival kind");
}

ArrivalSpec ArrivalSpec::preset(std::string_view name) {
  ArrivalSpec spec;
  if (name == "poisson") {
    spec.kind = ArrivalKind::Poisson;
    return spec;
  }
  if (name == "diurnal") {
    spec.kind = ArrivalKind::Diurnal;
    return spec;
  }
  if (name == "bursty") {
    spec.kind = ArrivalKind::Bursty;
    return spec;
  }
  ECOST_REQUIRE(false, "unknown arrival preset (want poisson|diurnal|bursty)");
}

ArrivalProcess::ArrivalProcess(ArrivalSpec spec)
    : spec_(spec), rng_(spec.seed) {
  ECOST_REQUIRE(spec_.mean_gap_s > 0.0, "mean inter-arrival must be positive");
  ECOST_REQUIRE(spec_.gib > 0.0, "arrival input size must be positive");
  if (spec_.kind == ArrivalKind::Diurnal) {
    ECOST_REQUIRE(spec_.period_s > 0.0, "diurnal period must be positive");
    ECOST_REQUIRE(spec_.trough > 0.0 && spec_.trough <= 1.0,
                  "diurnal trough must be in (0, 1]");
  }
  if (spec_.kind == ArrivalKind::Bursty) {
    ECOST_REQUIRE(spec_.burst_factor >= 1.0, "burst factor must be >= 1");
    ECOST_REQUIRE(spec_.burst_len_s > 0.0 && spec_.calm_len_s > 0.0,
                  "burst/calm phase lengths must be positive");
  }
}

double ArrivalProcess::rate_at(double t) {
  const double base = 1.0 / spec_.mean_gap_s;
  switch (spec_.kind) {
    case ArrivalKind::Poisson:
      return base;
    case ArrivalKind::Diurnal: {
      // Sinusoid between trough*base and base, peaking mid-period.
      const double phase = 2.0 * M_PI * (t / spec_.period_s);
      const double lo = spec_.trough;
      const double mix = 0.5 * (1.0 - std::cos(phase));  // 0 at t=0, 1 mid
      return base * (lo + (1.0 - lo) * mix);
    }
    case ArrivalKind::Bursty: {
      // Advance the two-state phase machine up to t. Phase flips are drawn
      // lazily but deterministically from the same stream as the gaps.
      while (t >= phase_end_s_) {
        const double mean =
            in_burst_ ? spec_.calm_len_s : spec_.burst_len_s;
        in_burst_ = !in_burst_;
        phase_end_s_ += -mean * std::log(1.0 - rng_.uniform());
      }
      return in_burst_ ? base * spec_.burst_factor : base;
    }
  }
  ECOST_CHECK(false, "unreachable arrival kind");
}

Arrival ArrivalProcess::next() {
  // Exponential gap at the rate in force when the previous job arrived —
  // a first-order approximation of an inhomogeneous Poisson process that
  // keeps every draw a single uniform (and the stream reproducible).
  const double rate = rate_at(t_);
  const double gap = -std::log(1.0 - rng_.uniform()) / rate;
  t_ += std::max(gap, 1e-9);  // strictly increasing timestamps

  const auto apps = all_apps();
  Arrival a;
  a.t_s = t_;
  a.app = apps[rng_.uniform_u64(apps.size())];
  a.gib = spec_.gib;
  return a;
}

std::vector<Arrival> ArrivalProcess::take(std::size_t count) {
  std::vector<Arrival> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(next());
  return out;
}

}  // namespace ecost::workloads
