#include "workloads/apps.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace ecost::workloads {
namespace {

using mapreduce::AppClass;
using mapreduce::AppProfile;

// Calibration notes
// -----------------
// * Compute-bound (C) apps: high instructions/byte, tiny LLC working set,
//   negligible I/O beyond the input scan => CPUuser high, scales with f.
// * I/O-bound (I) Sort: little compute, shuffle == input, heavy spill =>
//   high CPUiowait, a single instance cannot saturate the disk.
// * Hybrid (H) Grep/TeraSort: balanced compute and I/O.
// * Memory-bound (M) FP-Growth/CF/PageRank: LLC working sets far beyond the
//   shared cache, high MPKI => stall-dominated, insensitive to frequency,
//   prefer many cores, suffer from cache/bandwidth sharing.
AppProfile make(const char* name, const char* abbrev, AppClass c,
                double ipb, double cpi, double mpki, double icache,
                double branch, double rd, double wr, double shuffle,
                double fp_fixed, double fp_slope, double cache, double rpb) {
  AppProfile p;
  p.name = name;
  p.abbrev = abbrev;
  p.true_class = c;
  p.instr_per_byte = ipb;
  p.base_cpi = cpi;
  p.llc_mpki = mpki;
  p.icache_mpki = icache;
  p.branch_mpki = branch;
  p.io_read_bpb = rd;
  p.io_write_bpb = wr;
  p.shuffle_bpb = shuffle;
  p.footprint_fixed_mib = fp_fixed;
  p.footprint_per_input_mib = fp_slope;
  p.cache_mib = cache;
  p.reduce_instr_per_byte = rpb;
  p.validate();
  return p;
}

const std::vector<AppProfile>& registry() {
  static const std::vector<AppProfile> apps = {
      //    name            ab   class            ipb   cpi   mpki  ic   br   rd    wr    shfl  fpF  fpS   c$   rpb
      make("wordcount",     "WC", AppClass::Compute, 620, 1.10, 2.0, 1.5, 4.0, 1.00, 0.05, 0.06,  90, 0.05, 0.40, 120),
      make("sort",          "ST", AppClass::IoBound,  20, 1.20, 3.0, 0.8, 2.0, 1.00, 0.10, 1.00, 120, 0.15, 1.00,  15),
      make("grep",          "GP", AppClass::Hybrid,   45, 1.15, 2.5, 1.0, 5.0, 1.00, 0.02, 0.02,  80, 0.05, 0.80,  60),
      make("terasort",      "TS", AppClass::Hybrid,   85, 1.20, 6.0, 1.0, 3.0, 1.00, 0.10, 1.00, 140, 0.20, 1.80,  20),
      make("naive_bayes",   "NB", AppClass::Compute, 520, 1.15, 2.6, 2.0, 5.0, 1.00, 0.05, 0.08, 110, 0.08, 0.50, 100),
      make("fp_growth",     "FP", AppClass::MemBound,320, 1.25, 9.0, 1.2, 4.0, 1.00, 0.08, 0.15, 380, 0.40, 4.20,  80),
      make("collab_filter", "CF", AppClass::MemBound,380, 1.30,10.0, 1.5, 5.0, 1.00, 0.10, 0.20, 420, 0.45, 4.80,  90),
      make("svm",           "SVM",AppClass::Compute, 760, 1.05, 1.6, 1.2, 3.0, 1.00, 0.03, 0.04, 100, 0.06, 0.35,  80),
      make("pagerank",      "PR", AppClass::MemBound,300, 1.30, 8.5, 1.4, 6.0, 1.00, 0.12, 0.30, 350, 0.50, 4.00, 110),
      make("hmm",           "HMM",AppClass::Compute, 600, 1.10, 2.2, 1.8, 4.0, 1.00, 0.04, 0.05,  95, 0.07, 0.45,  90),
      make("kmeans",        "KM", AppClass::Compute, 510, 1.12, 3.0, 1.3, 4.0, 1.05, 0.06, 0.07, 120, 0.10, 0.80, 100),
  };
  return apps;
}

// Section 7: micro-kernels + FP-Growth are "known"; the remaining real-world
// applications arrive as unknown workloads.
constexpr std::string_view kTrainingAbbrevs[] = {"WC", "ST", "GP", "TS", "FP"};

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::toupper(static_cast<unsigned char>(x)) ==
                  std::toupper(static_cast<unsigned char>(y));
         });
}

std::vector<AppProfile> subset(bool training) {
  std::vector<AppProfile> out;
  for (const AppProfile& app : registry()) {
    const bool in_training =
        std::any_of(std::begin(kTrainingAbbrevs), std::end(kTrainingAbbrevs),
                    [&](std::string_view t) { return iequals(t, app.abbrev); });
    if (in_training == training) out.push_back(app);
  }
  return out;
}

}  // namespace

std::span<const AppProfile> all_apps() { return registry(); }

const AppProfile& app_by_abbrev(std::string_view abbrev) {
  for (const AppProfile& app : registry()) {
    if (iequals(app.abbrev, abbrev)) return app;
  }
  ECOST_REQUIRE(false, "unknown application abbreviation: " +
                           std::string(abbrev));
  return registry().front();  // unreachable
}

std::span<const AppProfile> training_apps() {
  static const std::vector<AppProfile> apps = subset(/*training=*/true);
  return apps;
}

std::span<const AppProfile> testing_apps() {
  static const std::vector<AppProfile> apps = subset(/*training=*/false);
  return apps;
}

bool is_training_app(const AppProfile& app) {
  return std::any_of(std::begin(kTrainingAbbrevs), std::end(kTrainingAbbrevs),
                     [&](std::string_view t) { return iequals(t, app.abbrev); });
}

std::vector<const AppProfile*> training_apps_of_class(AppClass c) {
  std::vector<const AppProfile*> out;
  for (const AppProfile& app : training_apps()) {
    if (app.true_class == c) out.push_back(&app);
  }
  return out;
}

}  // namespace ecost::workloads
