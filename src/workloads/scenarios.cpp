#include "workloads/scenarios.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "workloads/apps.hpp"

namespace ecost::workloads {
namespace {

// Table 3 of the paper. The paper prints 15 visible entries for WS2/WS6/WS7
// but states every workload has 16 applications; the trailing entry repeats
// the dominant app of the pattern.
const std::vector<WorkloadScenario>& registry() {
  static const std::vector<WorkloadScenario> scenarios = {
      {"WS1",
       {"svm", "svm", "wc", "wc", "svm", "wc", "hmm", "wc", "hmm", "hmm",
        "wc", "wc", "hmm", "wc", "svm", "wc"}},
      {"WS2",
       {"ts", "gp", "ts", "ts", "ts", "gp", "ts", "ts", "ts", "gp", "ts",
        "ts", "gp", "ts", "ts", "ts"}},
      {"WS3",
       {"st", "st", "st", "st", "st", "st", "st", "st", "st", "st", "st",
        "st", "st", "st", "st", "st"}},
      {"WS4",
       {"svm", "wc", "ts", "st", "wc", "wc", "ts", "st", "hmm", "svm", "ts",
        "st", "wc", "wc", "ts", "st"}},
      {"WS5",
       {"hmm", "ts", "st", "ts", "wc", "ts", "st", "ts", "svm", "ts", "st",
        "ts", "hmm", "ts", "st", "ts"}},
      {"WS6",
       {"ts", "st", "ts", "st", "ts", "st", "st", "ts", "st", "ts", "st",
        "ts", "st", "ts", "st", "ts"}},
      {"WS7",
       {"cf", "cf", "cf", "st", "cf", "cf", "cf", "st", "cf", "cf", "cf",
        "cf", "cf", "cf", "st", "cf"}},
      {"WS8",
       {"cf", "fp", "ts", "st", "cf", "fp", "ts", "st", "hmm", "svm", "ts",
        "st", "wc", "wc", "ts", "st"}},
  };
  return scenarios;
}

}  // namespace

std::string WorkloadScenario::class_pattern() const {
  std::string out = "[";
  for (std::size_t i = 0; i < app_abbrevs.size(); ++i) {
    if (i) out += ',';
    out += mapreduce::class_letter(app_by_abbrev(app_abbrevs[i]).true_class);
  }
  out += ']';
  return out;
}

std::vector<mapreduce::JobSpec> WorkloadScenario::jobs(
    double gib_per_app) const {
  ECOST_REQUIRE(gib_per_app > 0.0, "input size must be positive");
  std::vector<mapreduce::JobSpec> out;
  out.reserve(app_abbrevs.size());
  for (const std::string& a : app_abbrevs) {
    out.push_back(mapreduce::JobSpec::of_gib(app_by_abbrev(a), gib_per_app));
  }
  return out;
}

std::vector<mapreduce::JobSpec> WorkloadScenario::scaled_jobs(
    double gib_per_app, std::size_t count) const {
  ECOST_REQUIRE(gib_per_app > 0.0, "input size must be positive");
  ECOST_REQUIRE(count >= 1, "need at least one job");
  std::vector<mapreduce::JobSpec> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& a = app_abbrevs[i % app_abbrevs.size()];
    out.push_back(mapreduce::JobSpec::of_gib(app_by_abbrev(a), gib_per_app));
  }
  return out;
}

std::size_t scaled_job_count(int nodes) {
  ECOST_REQUIRE(nodes >= 1, "need at least one node");
  std::size_t count = std::max<std::size_t>(
      16, static_cast<std::size_t>(nodes) / 4);
  if (count % 2 != 0) ++count;
  return count;
}

std::span<const WorkloadScenario> all_scenarios() { return registry(); }

const WorkloadScenario& scenario_by_name(const std::string& name) {
  for (const WorkloadScenario& ws : registry()) {
    if (ws.name == name) return ws;
  }
  ECOST_REQUIRE(false, "unknown workload scenario: " + name);
  return registry().front();  // unreachable
}

}  // namespace ecost::workloads
