// Datacenter scheduler: a Table-3 workload stream scheduled onto a small
// cluster under three policies — one job per node (SNM), naive co-location
// (CBM), and ECoST's classify/pair/self-tune loop — reporting makespan,
// energy, and EDP for each.
//
// Usage: ./build/examples/datacenter_scheduler [SCENARIO] [NODES]
//   SCENARIO  WS1..WS8 (default WS8, the most heterogeneous mix)
//   NODES     cluster size (default 4)
#include <cstdlib>
#include <iostream>

#include "core/mapping_policies.hpp"
#include "util/table.hpp"
#include "workloads/scenarios.hpp"

using namespace ecost;

int main(int argc, char** argv) {
  const std::string scenario = argc > 1 ? argv[1] : "WS8";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 4;
  if (nodes < 1) {
    std::cerr << "node count must be >= 1\n";
    return 1;
  }

  const auto& ws = workloads::scenario_by_name(scenario);
  std::cout << "Scheduling " << ws.name << " " << ws.class_pattern() << "\n"
            << "16 applications, 1 GiB each, on " << nodes
            << " microserver node(s).\n\n";

  const mapreduce::NodeEvaluator node;
  std::cout << "Training ECoST's tuner on the known applications...\n\n";
  const core::TrainingData td = core::build_training_data(node);
  const core::MlmStp stp(core::ModelKind::RepTree, td, node.spec());

  const core::MappingPolicies mp(node, ws.jobs(1.0), nodes);
  const core::PolicyResult results[] = {
      mp.single_node(),        // one app per node, untuned
      mp.core_balance(),       // naive 4+4 co-location, untuned
      mp.predict_tuning(td),   // tuned but not paired
      mp.ecost(td, stp),       // the full technique
      mp.upper_bound(),        // offline oracle
  };
  const char* notes[] = {
      "one app per node (all 8 cores), Hadoop defaults",
      "blind 4+4 co-location, Hadoop defaults",
      "solo runs with predicted knobs (no pairing)",
      "classify -> pair via decision tree -> self-tune",
      "brute-force pairing + tuning (not deployable)",
  };

  Table table({"policy", "makespan (s)", "energy (kJ)", "EDP (norm. to UB)",
               "what it does"});
  const double ub = results[4].edp();
  for (std::size_t i = 0; i < std::size(results); ++i) {
    table.add_row({results[i].policy,
                   Table::num(results[i].makespan_s, 0),
                   Table::num(results[i].energy_dyn_j / 1000.0, 1),
                   Table::num(results[i].edp() / ub, 2), notes[i]});
  }
  table.print(std::cout);

  std::cout << "\nECoST achieves "
            << Table::num(100.0 * (results[3].edp() / ub - 1.0), 1)
            << "% above the oracle while making every decision online.\n";
  return 0;
}
