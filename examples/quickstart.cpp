// Quickstart: the ECoST pipeline on one node in ~60 lines.
//
//   1. simulate two MapReduce jobs (a known kernel and an "unknown" app),
//   2. profile the unknown one and classify it,
//   3. let ECoST's self-tuning predictor pick the co-location knobs,
//   4. compare against running them serially and against the oracle.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/dataset_builder.hpp"
#include "core/profiling.hpp"
#include "core/stp.hpp"
#include "tuning/brute_force.hpp"
#include "util/table.hpp"
#include "workloads/apps.hpp"

using namespace ecost;

int main() {
  // The simulated 8-core Atom microserver node.
  const mapreduce::NodeEvaluator node;

  // Two applications, 1 GiB of input each: Sort is a known training kernel;
  // SVM arrives as an unknown application.
  const auto sort_job =
      mapreduce::JobSpec::of_gib(workloads::app_by_abbrev("ST"), 1.0);
  const auto svm_job =
      mapreduce::JobSpec::of_gib(workloads::app_by_abbrev("SVM"), 1.0);

  // Offline step (done once per cluster): sweep the known applications to
  // build the tuning database and train the REPTree EDP model.
  std::cout << "Building training database (offline, done once)...\n";
  core::SweepOptions opts;
  opts.sizes_gib = {1.0};  // quickstart-sized sweep
  const core::TrainingData td = core::build_training_data(node, opts);
  const core::MlmStp stp(core::ModelKind::RepTree, td, node.spec());

  // Online step: profile both applications for a learning period, classify.
  core::AppInfo sort_info{sort_job, {}, {}};
  core::AppInfo svm_info{svm_job, {}, {}};
  core::ProfilingOptions popts;
  popts.seed = 1;
  sort_info.features = core::profile_application(node, sort_job.app, popts);
  popts.seed = 2;
  svm_info.features = core::profile_application(node, svm_job.app, popts);
  std::cout << "Classifier says: ST -> "
            << class_letter(td.classifier.classify(sort_info.features))
            << ", SVM -> "
            << class_letter(td.classifier.classify(svm_info.features))
            << " (truth: I and C)\n\n";

  // ECoST predicts the pair configuration; compare the alternatives.
  const mapreduce::PairConfig predicted = stp.predict(sort_info, svm_info);
  const auto co_run =
      node.run_pair(sort_job, predicted.first, svm_job, predicted.second);

  const tuning::BruteForce bf(node);
  const auto serial = bf.ilao(sort_job, svm_job);
  const auto oracle = bf.colao(sort_job, svm_job);

  Table table({"strategy", "config", "time (s)", "energy (J)", "EDP"});
  table.add_row({"serial, individually tuned (ILAO)",
                 serial.cfg_a.to_string() + " ; " + serial.cfg_b.to_string(),
                 Table::num(serial.makespan_s, 1),
                 Table::num(serial.energy_j, 0), Table::num(serial.edp, 0)});
  table.add_row({"co-located, ECoST-tuned", predicted.to_string(),
                 Table::num(co_run.makespan_s, 1),
                 Table::num(co_run.energy_dyn_j, 0),
                 Table::num(co_run.edp(), 0)});
  table.add_row({"co-located, oracle (COLAO)", oracle.cfg.to_string(),
                 Table::num(oracle.result.makespan_s, 1),
                 Table::num(oracle.result.energy_dyn_j, 0),
                 Table::num(oracle.edp, 0)});
  table.print(std::cout);

  std::cout << "\nECoST is within "
            << Table::num(100.0 * (co_run.edp() / oracle.edp - 1.0), 1)
            << "% of the brute-force oracle, and "
            << Table::num(serial.edp / co_run.edp(), 2)
            << "x better than serial execution.\n";
  return 0;
}
