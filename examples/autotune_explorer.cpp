// Autotune explorer: sweep the full knob space for one application and
// print the EDP surface — the offline analysis behind Figure 2.
//
// Usage: ./build/examples/autotune_explorer [APP] [GIB]
//   APP  application abbreviation (WC ST GP TS NB FP CF SVM PR HMM KM),
//        default TS
//   GIB  input size per node in GiB, default 5
#include <cstdlib>
#include <iostream>

#include "hdfs/config.hpp"
#include "tuning/brute_force.hpp"
#include "util/table.hpp"
#include "workloads/apps.hpp"

using namespace ecost;

int main(int argc, char** argv) {
  const std::string abbrev = argc > 1 ? argv[1] : "TS";
  const double gib = argc > 2 ? std::atof(argv[2]) : 5.0;
  if (gib <= 0.0) {
    std::cerr << "input size must be positive\n";
    return 1;
  }

  const mapreduce::NodeEvaluator node;
  const auto& app = workloads::app_by_abbrev(abbrev);
  const auto job = mapreduce::JobSpec::of_gib(app, gib);

  std::cout << "EDP surface for " << app.name << " ("
            << class_letter(app.true_class) << " class, " << gib
            << " GiB/node). Each cell: EDP at the best frequency.\n\n";

  Table table({"block \\ mappers", "1", "2", "3", "4", "5", "6", "7", "8"});
  for (int h : hdfs::kBlockSizesMib) {
    std::vector<std::string> row = {std::to_string(h) + " MB"};
    for (int m = 1; m <= node.spec().cores; ++m) {
      double best = 1e300;
      for (sim::FreqLevel f : sim::kAllFreqLevels) {
        best = std::min(best, node.run_solo(job, {f, h, m}).edp());
      }
      row.push_back(Table::num(best, 0));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  const tuning::BruteForce bf(node);
  const auto best = bf.tune_solo(job);
  std::cout << "\nOptimum over all 160 configurations: "
            << best.cfg.to_string() << "\n  time   "
            << Table::num(best.result.makespan_s, 1) << " s\n  power  "
            << Table::num(best.result.avg_dyn_power_w(), 1)
            << " W (idle-subtracted)\n  EDP    " << Table::num(best.edp, 0)
            << "\n";

  // How much tuning matters vs the Hadoop-ish default.
  const auto def =
      node.run_solo(job, {sim::FreqLevel::F2_4, 128, node.spec().cores});
  std::cout << "\nUntuned default (2.4GHz/128MB/m8) EDP: "
            << Table::num(def.edp(), 0) << "  ->  tuning saves "
            << Table::num(100.0 * (1.0 - best.edp / def.edp()), 1) << "%\n";
  return 0;
}
