// Profile-and-classify: the measurement substrate end to end. Runs one
// application through the discrete-event engine, shows what the emulated
// Wattsup meter and dstat record second by second, extracts the feature
// vector, and classifies the application.
//
// Usage: ./build/examples/profile_and_classify [APP]
//   APP  application abbreviation, default PR (an "unknown" app)
#include <cstdlib>
#include <iostream>

#include "core/dataset_builder.hpp"
#include "core/profiling.hpp"
#include "mapreduce/node_runner.hpp"
#include "perfmon/dstat.hpp"
#include "perfmon/wattsup.hpp"
#include "util/table.hpp"
#include "workloads/apps.hpp"

using namespace ecost;

int main(int argc, char** argv) {
  const std::string abbrev = argc > 1 ? argv[1] : "PR";
  const auto& app = workloads::app_by_abbrev(abbrev);
  const auto job = mapreduce::JobSpec::of_gib(app, 1.0);
  const sim::NodeSpec spec = sim::NodeSpec::atom_c2758();

  std::cout << "Running " << app.name
            << " (1 GiB, 2.4GHz/128MB/m4) through the discrete-event "
               "engine...\n\n";
  mapreduce::NodeRunner runner(spec, 42);
  const auto des =
      runner.run_solo(job, {sim::FreqLevel::F2_4, 128, 4});

  // The Wattsup meter's view (1 Hz wall power) and the dstat records.
  perfmon::WattsUp meter(7);
  const auto readings = meter.record(des.trace);
  const auto records = perfmon::dstat_records(des.trace);

  std::cout << "First seconds, as the instruments would log them:\n";
  Table trace({"t (s)", "watts", "cpu usr", "cpu wai", "rd MiB/s",
               "wr MiB/s", "cache MiB"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, records.size()); ++i) {
    trace.add_row({Table::num(records[i].t_s, 0),
                   Table::num(readings[i].watts, 1),
                   Table::num(records[i].cpu_user, 2),
                   Table::num(records[i].cpu_iowait, 2),
                   Table::num(records[i].io_read_mibps, 1),
                   Table::num(records[i].io_write_mibps, 1),
                   Table::num(records[i].mem_cache_mib, 0)});
  }
  trace.print(std::cout);

  const auto summary = perfmon::summarize(records);
  std::cout << "\nRun summary: " << Table::num(des.run.makespan_s, 1)
            << " s, avg wall power "
            << Table::num(perfmon::WattsUp::average_w(readings), 1)
            << " W, dynamic "
            << Table::num(
                   perfmon::WattsUp::dynamic_w(readings, spec.idle_power_w), 1)
            << " W (idle-subtracted), peak footprint "
            << Table::num(summary.peak_mem_used_mib, 0) << " MiB\n\n";

  // Feature extraction + classification against the training apps.
  const mapreduce::NodeEvaluator eval(spec);
  core::SweepOptions opts;
  opts.sizes_gib = {1.0};
  const core::TrainingData td = core::build_training_data(eval, opts);
  core::ProfilingOptions popts;
  popts.seed = 11;
  const auto fv = core::profile_application(eval, app, popts);

  Table features({"feature", "value"});
  for (perfmon::Feature f : perfmon::selected_features()) {
    features.add_row({std::string(perfmon::feature_name(f)),
                      Table::num(fv[static_cast<std::size_t>(f)], 2)});
  }
  features.print(std::cout);
  std::cout << "\nClassifier verdict: class "
            << class_letter(td.classifier.classify(fv)) << " (k-NN), class "
            << class_letter(td.classifier.classify_rules(fv))
            << " (threshold rules); ground truth "
            << class_letter(app.true_class) << ".\n";
  return 0;
}
