// Real WordCount: the functional engine and the performance simulator side
// by side. The same workload runs (a) for real — map/shuffle/reduce over
// generated text on a thread pool — and (b) through the calibrated node
// model that the scheduling study uses, showing how the two layers relate.
//
// Usage: ./build/examples/real_wordcount [LINES] [WORKERS]
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "mapreduce/node_evaluator.hpp"
#include "mrexec/builtin_jobs.hpp"
#include "mrexec/synthetic_data.hpp"
#include "util/table.hpp"
#include "workloads/apps.hpp"

using namespace ecost;

int main(int argc, char** argv) {
  const std::size_t lines = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : 50000;
  const std::size_t workers = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                       : 4;
  if (lines == 0 || workers == 0) {
    std::cerr << "usage: real_wordcount [LINES>=1] [WORKERS>=1]\n";
    return 1;
  }

  // (a) the functional engine, for real.
  mrexec::TextOptions topts;
  topts.lines = lines;
  topts.words_per_line = 16;
  topts.vocabulary = 2000;
  const auto text = mrexec::generate_text(topts);

  mrexec::JobConfig cfg;
  cfg.map_parallelism = workers;
  cfg.reduce_tasks = workers;
  cfg.records_per_split = 2048;
  const mrexec::Engine engine(cfg);

  mrexec::JobStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  const auto counts = mrexec::run_wordcount(engine, text, &stats);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::cout << "Functional WordCount over " << lines << " lines ("
            << workers << " workers):\n";
  Table stat_table({"metric", "value"});
  stat_table.add_row({"map tasks", std::to_string(stats.map_tasks)});
  stat_table.add_row({"map output records (after combiner)",
                      std::to_string(stats.map_output_records)});
  stat_table.add_row({"shuffle bytes", std::to_string(stats.shuffle_bytes)});
  stat_table.add_row({"distinct words", std::to_string(counts.size())});
  stat_table.add_row({"wall time (s)", Table::num(elapsed, 3)});
  stat_table.print(std::cout);

  std::cout << "\nTop words:\n";
  std::vector<std::pair<std::size_t, std::string>> top;
  for (const auto& [w, c] : counts) top.emplace_back(c, w);
  std::sort(top.rbegin(), top.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size()); ++i) {
    std::cout << "  " << top[i].second << "  " << top[i].first << '\n';
  }

  // (b) the calibrated microserver model of the same application class.
  const mapreduce::NodeEvaluator node;
  const auto job =
      mapreduce::JobSpec::of_gib(workloads::app_by_abbrev("WC"), 1.0);
  const auto rr = node.run_solo(
      job, {sim::FreqLevel::F2_4, 128,
            static_cast<int>(std::min<std::size_t>(workers, 8))});
  std::cout << "\nSimulated Atom node running wordcount on 1 GiB at the same "
               "parallelism:\n  "
            << Table::num(rr.makespan_s, 1) << " s, "
            << Table::num(rr.avg_dyn_power_w(), 1)
            << " W dynamic, EDP " << Table::num(rr.edp(), 0)
            << "\n\nThe functional engine validates the MapReduce semantics; "
               "the simulator prices those semantics on datacenter "
               "hardware.\n";
  return 0;
}
