// Streaming arrivals: the Figure 4 story end to end. Jobs arrive at the
// datacenter over time (Poisson process); each is profiled for a learning
// period, classified, queued, paired by the decision tree the moment a node
// slot frees (honouring the head reservation and small-job leap-forward),
// and self-tuned. The per-placement decision log is printed.
//
// Usage: ./build/examples/streaming_arrivals [JOBS] [MEAN_GAP_S] [NODES]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/dispatchers/ecost.hpp"
#include "core/profiling.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/apps.hpp"

using namespace ecost;

int main(int argc, char** argv) {
  const int n_jobs = argc > 1 ? std::atoi(argv[1]) : 12;
  const double mean_gap_s = argc > 2 ? std::atof(argv[2]) : 30.0;
  const int nodes = argc > 3 ? std::atoi(argv[3]) : 2;
  if (n_jobs < 1 || mean_gap_s <= 0.0 || nodes < 1) {
    std::cerr << "usage: streaming_arrivals [JOBS>=1] [MEAN_GAP>0] [NODES>=1]\n";
    return 1;
  }

  const mapreduce::NodeEvaluator eval;
  std::cout << "Training ECoST (offline)...\n";
  core::SweepOptions opts;
  opts.sizes_gib = {1.0};
  const core::TrainingData td = core::build_training_data(eval, opts);
  const core::MlmStp stp(core::ModelKind::RepTree, td, eval.spec());

  // A Poisson stream drawn from the full application mix.
  Rng rng(2026);
  const auto apps = workloads::all_apps();
  std::vector<core::dispatchers::ArrivingJob> stream;
  double t = 0.0;
  std::cout << "\nArrivals:\n";
  for (int i = 0; i < n_jobs; ++i) {
    t += -mean_gap_s * std::log(1.0 - rng.uniform());
    core::dispatchers::ArrivingJob aj;
    aj.arrival_s = t;
    aj.job.id = static_cast<std::uint64_t>(i);
    const auto& app = apps[rng.uniform_u64(apps.size())];
    aj.job.info.job = mapreduce::JobSpec::of_gib(app, 1.0);
    core::ProfilingOptions popts;
    popts.seed = 7000 + static_cast<std::uint64_t>(i);
    aj.job.info.features = core::profile_application(eval, app, popts);
    aj.job.info.cls = td.classifier.classify(aj.job.info.features);
    aj.job.est_duration_s =
        eval.run_solo(aj.job.info.job, {sim::FreqLevel::F2_4, 128, 8})
            .makespan_s;
    std::cout << "  t=" << Table::num(t, 0) << "s  job " << i << " = "
              << app.abbrev << " (classified "
              << class_letter(aj.job.info.cls) << ", est "
              << Table::num(aj.job.est_duration_s, 0) << "s)\n";
    stream.push_back(std::move(aj));
  }

  core::dispatchers::EcostDispatcher dispatcher(eval, td, stp,
                                                std::move(stream));
  core::ClusterEngine engine(eval, nodes, 2);
  const core::ClusterOutcome oc = engine.run(dispatcher);

  std::cout << "\nPlacement decisions:\n";
  Table table({"t (s)", "job", "node", "config", "co-located with"});
  for (const auto& d : dispatcher.decisions()) {
    table.add_row({Table::num(d.t_s, 0), std::to_string(d.job_id),
                   std::to_string(d.node), d.cfg.to_string(),
                   d.paired ? std::to_string(d.partner_id) : "-"});
  }
  table.print(std::cout);

  std::cout << "\nAll " << oc.finish_times.size() << " jobs done at t="
            << Table::num(oc.makespan_s, 0) << "s; dynamic energy "
            << Table::num(oc.energy_dyn_j / 1000.0, 1) << " kJ; EDP "
            << Table::num(oc.edp(), 0) << ".\n";
  return 0;
}
