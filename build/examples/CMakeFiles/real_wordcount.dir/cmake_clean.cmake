file(REMOVE_RECURSE
  "CMakeFiles/real_wordcount.dir/real_wordcount.cpp.o"
  "CMakeFiles/real_wordcount.dir/real_wordcount.cpp.o.d"
  "real_wordcount"
  "real_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
