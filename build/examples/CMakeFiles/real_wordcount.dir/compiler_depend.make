# Empty compiler generated dependencies file for real_wordcount.
# This may be replaced when dependencies are built.
