# Empty compiler generated dependencies file for streaming_arrivals.
# This may be replaced when dependencies are built.
