file(REMOVE_RECURSE
  "CMakeFiles/profile_and_classify.dir/profile_and_classify.cpp.o"
  "CMakeFiles/profile_and_classify.dir/profile_and_classify.cpp.o.d"
  "profile_and_classify"
  "profile_and_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_and_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
