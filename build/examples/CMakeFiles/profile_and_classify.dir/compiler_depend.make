# Empty compiler generated dependencies file for profile_and_classify.
# This may be replaced when dependencies are built.
