file(REMOVE_RECURSE
  "CMakeFiles/ecost_util.dir/csv.cpp.o"
  "CMakeFiles/ecost_util.dir/csv.cpp.o.d"
  "CMakeFiles/ecost_util.dir/error.cpp.o"
  "CMakeFiles/ecost_util.dir/error.cpp.o.d"
  "CMakeFiles/ecost_util.dir/parallel_for.cpp.o"
  "CMakeFiles/ecost_util.dir/parallel_for.cpp.o.d"
  "CMakeFiles/ecost_util.dir/rng.cpp.o"
  "CMakeFiles/ecost_util.dir/rng.cpp.o.d"
  "CMakeFiles/ecost_util.dir/stats.cpp.o"
  "CMakeFiles/ecost_util.dir/stats.cpp.o.d"
  "CMakeFiles/ecost_util.dir/table.cpp.o"
  "CMakeFiles/ecost_util.dir/table.cpp.o.d"
  "libecost_util.a"
  "libecost_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecost_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
