# Empty compiler generated dependencies file for ecost_util.
# This may be replaced when dependencies are built.
