file(REMOVE_RECURSE
  "libecost_util.a"
)
