file(REMOVE_RECURSE
  "libecost_workloads.a"
)
