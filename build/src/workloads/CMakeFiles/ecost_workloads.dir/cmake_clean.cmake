file(REMOVE_RECURSE
  "CMakeFiles/ecost_workloads.dir/apps.cpp.o"
  "CMakeFiles/ecost_workloads.dir/apps.cpp.o.d"
  "CMakeFiles/ecost_workloads.dir/scenarios.cpp.o"
  "CMakeFiles/ecost_workloads.dir/scenarios.cpp.o.d"
  "libecost_workloads.a"
  "libecost_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecost_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
