# Empty dependencies file for ecost_workloads.
# This may be replaced when dependencies are built.
