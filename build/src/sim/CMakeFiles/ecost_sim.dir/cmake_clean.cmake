file(REMOVE_RECURSE
  "CMakeFiles/ecost_sim.dir/contention.cpp.o"
  "CMakeFiles/ecost_sim.dir/contention.cpp.o.d"
  "CMakeFiles/ecost_sim.dir/dvfs.cpp.o"
  "CMakeFiles/ecost_sim.dir/dvfs.cpp.o.d"
  "CMakeFiles/ecost_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ecost_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ecost_sim.dir/node_spec.cpp.o"
  "CMakeFiles/ecost_sim.dir/node_spec.cpp.o.d"
  "CMakeFiles/ecost_sim.dir/power.cpp.o"
  "CMakeFiles/ecost_sim.dir/power.cpp.o.d"
  "libecost_sim.a"
  "libecost_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecost_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
