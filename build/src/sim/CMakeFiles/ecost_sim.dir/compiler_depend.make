# Empty compiler generated dependencies file for ecost_sim.
# This may be replaced when dependencies are built.
