file(REMOVE_RECURSE
  "libecost_sim.a"
)
