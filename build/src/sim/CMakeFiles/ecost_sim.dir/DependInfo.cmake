
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/contention.cpp" "src/sim/CMakeFiles/ecost_sim.dir/contention.cpp.o" "gcc" "src/sim/CMakeFiles/ecost_sim.dir/contention.cpp.o.d"
  "/root/repo/src/sim/dvfs.cpp" "src/sim/CMakeFiles/ecost_sim.dir/dvfs.cpp.o" "gcc" "src/sim/CMakeFiles/ecost_sim.dir/dvfs.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/ecost_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/ecost_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/node_spec.cpp" "src/sim/CMakeFiles/ecost_sim.dir/node_spec.cpp.o" "gcc" "src/sim/CMakeFiles/ecost_sim.dir/node_spec.cpp.o.d"
  "/root/repo/src/sim/power.cpp" "src/sim/CMakeFiles/ecost_sim.dir/power.cpp.o" "gcc" "src/sim/CMakeFiles/ecost_sim.dir/power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ecost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
