
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/app_profile.cpp" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/app_profile.cpp.o" "gcc" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/app_profile.cpp.o.d"
  "/root/repo/src/mapreduce/config.cpp" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/config.cpp.o" "gcc" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/config.cpp.o.d"
  "/root/repo/src/mapreduce/env_solver.cpp" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/env_solver.cpp.o" "gcc" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/env_solver.cpp.o.d"
  "/root/repo/src/mapreduce/node_evaluator.cpp" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/node_evaluator.cpp.o" "gcc" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/node_evaluator.cpp.o.d"
  "/root/repo/src/mapreduce/node_runner.cpp" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/node_runner.cpp.o" "gcc" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/node_runner.cpp.o.d"
  "/root/repo/src/mapreduce/task_model.cpp" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/task_model.cpp.o" "gcc" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/task_model.cpp.o.d"
  "/root/repo/src/mapreduce/wave_model.cpp" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/wave_model.cpp.o" "gcc" "src/mapreduce/CMakeFiles/ecost_mapreduce.dir/wave_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ecost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecost_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/ecost_hdfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
