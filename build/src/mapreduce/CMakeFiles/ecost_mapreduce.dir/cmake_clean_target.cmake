file(REMOVE_RECURSE
  "libecost_mapreduce.a"
)
