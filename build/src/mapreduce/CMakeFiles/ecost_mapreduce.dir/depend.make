# Empty dependencies file for ecost_mapreduce.
# This may be replaced when dependencies are built.
