file(REMOVE_RECURSE
  "CMakeFiles/ecost_mapreduce.dir/app_profile.cpp.o"
  "CMakeFiles/ecost_mapreduce.dir/app_profile.cpp.o.d"
  "CMakeFiles/ecost_mapreduce.dir/config.cpp.o"
  "CMakeFiles/ecost_mapreduce.dir/config.cpp.o.d"
  "CMakeFiles/ecost_mapreduce.dir/env_solver.cpp.o"
  "CMakeFiles/ecost_mapreduce.dir/env_solver.cpp.o.d"
  "CMakeFiles/ecost_mapreduce.dir/node_evaluator.cpp.o"
  "CMakeFiles/ecost_mapreduce.dir/node_evaluator.cpp.o.d"
  "CMakeFiles/ecost_mapreduce.dir/node_runner.cpp.o"
  "CMakeFiles/ecost_mapreduce.dir/node_runner.cpp.o.d"
  "CMakeFiles/ecost_mapreduce.dir/task_model.cpp.o"
  "CMakeFiles/ecost_mapreduce.dir/task_model.cpp.o.d"
  "CMakeFiles/ecost_mapreduce.dir/wave_model.cpp.o"
  "CMakeFiles/ecost_mapreduce.dir/wave_model.cpp.o.d"
  "libecost_mapreduce.a"
  "libecost_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecost_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
