
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/ecost_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/hierarchical.cpp" "src/ml/CMakeFiles/ecost_ml.dir/hierarchical.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/hierarchical.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/ecost_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/ecost_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/linear_regression.cpp" "src/ml/CMakeFiles/ecost_ml.dir/linear_regression.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/linear_regression.cpp.o.d"
  "/root/repo/src/ml/lookup_table.cpp" "src/ml/CMakeFiles/ecost_ml.dir/lookup_table.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/lookup_table.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/ecost_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/ecost_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/ecost_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/ecost_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/ecost_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/reptree.cpp" "src/ml/CMakeFiles/ecost_ml.dir/reptree.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/reptree.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/ecost_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/ecost_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/ecost_ml.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ecost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
