# Empty compiler generated dependencies file for ecost_ml.
# This may be replaced when dependencies are built.
