file(REMOVE_RECURSE
  "CMakeFiles/ecost_ml.dir/dataset.cpp.o"
  "CMakeFiles/ecost_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/hierarchical.cpp.o"
  "CMakeFiles/ecost_ml.dir/hierarchical.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/knn.cpp.o"
  "CMakeFiles/ecost_ml.dir/knn.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/linalg.cpp.o"
  "CMakeFiles/ecost_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/linear_regression.cpp.o"
  "CMakeFiles/ecost_ml.dir/linear_regression.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/lookup_table.cpp.o"
  "CMakeFiles/ecost_ml.dir/lookup_table.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/matrix.cpp.o"
  "CMakeFiles/ecost_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/metrics.cpp.o"
  "CMakeFiles/ecost_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/mlp.cpp.o"
  "CMakeFiles/ecost_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/pca.cpp.o"
  "CMakeFiles/ecost_ml.dir/pca.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/random_forest.cpp.o"
  "CMakeFiles/ecost_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/reptree.cpp.o"
  "CMakeFiles/ecost_ml.dir/reptree.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/scaler.cpp.o"
  "CMakeFiles/ecost_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/ecost_ml.dir/serialize.cpp.o"
  "CMakeFiles/ecost_ml.dir/serialize.cpp.o.d"
  "libecost_ml.a"
  "libecost_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecost_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
