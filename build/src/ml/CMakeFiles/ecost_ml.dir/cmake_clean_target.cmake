file(REMOVE_RECURSE
  "libecost_ml.a"
)
