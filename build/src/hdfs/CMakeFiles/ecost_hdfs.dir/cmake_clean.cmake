file(REMOVE_RECURSE
  "CMakeFiles/ecost_hdfs.dir/block_planner.cpp.o"
  "CMakeFiles/ecost_hdfs.dir/block_planner.cpp.o.d"
  "CMakeFiles/ecost_hdfs.dir/page_cache.cpp.o"
  "CMakeFiles/ecost_hdfs.dir/page_cache.cpp.o.d"
  "libecost_hdfs.a"
  "libecost_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecost_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
