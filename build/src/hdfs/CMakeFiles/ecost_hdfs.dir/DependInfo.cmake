
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdfs/block_planner.cpp" "src/hdfs/CMakeFiles/ecost_hdfs.dir/block_planner.cpp.o" "gcc" "src/hdfs/CMakeFiles/ecost_hdfs.dir/block_planner.cpp.o.d"
  "/root/repo/src/hdfs/page_cache.cpp" "src/hdfs/CMakeFiles/ecost_hdfs.dir/page_cache.cpp.o" "gcc" "src/hdfs/CMakeFiles/ecost_hdfs.dir/page_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ecost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecost_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
