file(REMOVE_RECURSE
  "libecost_hdfs.a"
)
