# Empty compiler generated dependencies file for ecost_hdfs.
# This may be replaced when dependencies are built.
