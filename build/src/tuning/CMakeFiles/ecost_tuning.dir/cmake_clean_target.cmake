file(REMOVE_RECURSE
  "libecost_tuning.a"
)
