# Empty compiler generated dependencies file for ecost_tuning.
# This may be replaced when dependencies are built.
