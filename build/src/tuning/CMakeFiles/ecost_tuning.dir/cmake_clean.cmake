file(REMOVE_RECURSE
  "CMakeFiles/ecost_tuning.dir/brute_force.cpp.o"
  "CMakeFiles/ecost_tuning.dir/brute_force.cpp.o.d"
  "CMakeFiles/ecost_tuning.dir/config_space.cpp.o"
  "CMakeFiles/ecost_tuning.dir/config_space.cpp.o.d"
  "libecost_tuning.a"
  "libecost_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecost_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
