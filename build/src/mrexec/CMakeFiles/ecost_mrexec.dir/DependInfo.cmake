
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrexec/builtin_jobs.cpp" "src/mrexec/CMakeFiles/ecost_mrexec.dir/builtin_jobs.cpp.o" "gcc" "src/mrexec/CMakeFiles/ecost_mrexec.dir/builtin_jobs.cpp.o.d"
  "/root/repo/src/mrexec/engine.cpp" "src/mrexec/CMakeFiles/ecost_mrexec.dir/engine.cpp.o" "gcc" "src/mrexec/CMakeFiles/ecost_mrexec.dir/engine.cpp.o.d"
  "/root/repo/src/mrexec/synthetic_data.cpp" "src/mrexec/CMakeFiles/ecost_mrexec.dir/synthetic_data.cpp.o" "gcc" "src/mrexec/CMakeFiles/ecost_mrexec.dir/synthetic_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ecost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
