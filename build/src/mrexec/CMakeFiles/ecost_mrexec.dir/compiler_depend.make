# Empty compiler generated dependencies file for ecost_mrexec.
# This may be replaced when dependencies are built.
