file(REMOVE_RECURSE
  "libecost_mrexec.a"
)
