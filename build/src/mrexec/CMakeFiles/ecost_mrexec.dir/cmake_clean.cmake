file(REMOVE_RECURSE
  "CMakeFiles/ecost_mrexec.dir/builtin_jobs.cpp.o"
  "CMakeFiles/ecost_mrexec.dir/builtin_jobs.cpp.o.d"
  "CMakeFiles/ecost_mrexec.dir/engine.cpp.o"
  "CMakeFiles/ecost_mrexec.dir/engine.cpp.o.d"
  "CMakeFiles/ecost_mrexec.dir/synthetic_data.cpp.o"
  "CMakeFiles/ecost_mrexec.dir/synthetic_data.cpp.o.d"
  "libecost_mrexec.a"
  "libecost_mrexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecost_mrexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
