# Empty dependencies file for ecost_perfmon.
# This may be replaced when dependencies are built.
