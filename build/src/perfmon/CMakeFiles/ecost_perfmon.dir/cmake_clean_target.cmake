file(REMOVE_RECURSE
  "libecost_perfmon.a"
)
