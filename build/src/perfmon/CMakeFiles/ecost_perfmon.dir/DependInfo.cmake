
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmon/dstat.cpp" "src/perfmon/CMakeFiles/ecost_perfmon.dir/dstat.cpp.o" "gcc" "src/perfmon/CMakeFiles/ecost_perfmon.dir/dstat.cpp.o.d"
  "/root/repo/src/perfmon/feature_vector.cpp" "src/perfmon/CMakeFiles/ecost_perfmon.dir/feature_vector.cpp.o" "gcc" "src/perfmon/CMakeFiles/ecost_perfmon.dir/feature_vector.cpp.o.d"
  "/root/repo/src/perfmon/perf_sampler.cpp" "src/perfmon/CMakeFiles/ecost_perfmon.dir/perf_sampler.cpp.o" "gcc" "src/perfmon/CMakeFiles/ecost_perfmon.dir/perf_sampler.cpp.o.d"
  "/root/repo/src/perfmon/wattsup.cpp" "src/perfmon/CMakeFiles/ecost_perfmon.dir/wattsup.cpp.o" "gcc" "src/perfmon/CMakeFiles/ecost_perfmon.dir/wattsup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/ecost_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/ecost_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecost_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
