file(REMOVE_RECURSE
  "CMakeFiles/ecost_perfmon.dir/dstat.cpp.o"
  "CMakeFiles/ecost_perfmon.dir/dstat.cpp.o.d"
  "CMakeFiles/ecost_perfmon.dir/feature_vector.cpp.o"
  "CMakeFiles/ecost_perfmon.dir/feature_vector.cpp.o.d"
  "CMakeFiles/ecost_perfmon.dir/perf_sampler.cpp.o"
  "CMakeFiles/ecost_perfmon.dir/perf_sampler.cpp.o.d"
  "CMakeFiles/ecost_perfmon.dir/wattsup.cpp.o"
  "CMakeFiles/ecost_perfmon.dir/wattsup.cpp.o.d"
  "libecost_perfmon.a"
  "libecost_perfmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecost_perfmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
