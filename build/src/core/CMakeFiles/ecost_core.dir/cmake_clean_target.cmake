file(REMOVE_RECURSE
  "libecost_core.a"
)
