file(REMOVE_RECURSE
  "CMakeFiles/ecost_core.dir/classifier.cpp.o"
  "CMakeFiles/ecost_core.dir/classifier.cpp.o.d"
  "CMakeFiles/ecost_core.dir/cluster_engine.cpp.o"
  "CMakeFiles/ecost_core.dir/cluster_engine.cpp.o.d"
  "CMakeFiles/ecost_core.dir/config_db.cpp.o"
  "CMakeFiles/ecost_core.dir/config_db.cpp.o.d"
  "CMakeFiles/ecost_core.dir/dataset_builder.cpp.o"
  "CMakeFiles/ecost_core.dir/dataset_builder.cpp.o.d"
  "CMakeFiles/ecost_core.dir/db_io.cpp.o"
  "CMakeFiles/ecost_core.dir/db_io.cpp.o.d"
  "CMakeFiles/ecost_core.dir/ecost_dispatcher.cpp.o"
  "CMakeFiles/ecost_core.dir/ecost_dispatcher.cpp.o.d"
  "CMakeFiles/ecost_core.dir/mapping_policies.cpp.o"
  "CMakeFiles/ecost_core.dir/mapping_policies.cpp.o.d"
  "CMakeFiles/ecost_core.dir/pairing.cpp.o"
  "CMakeFiles/ecost_core.dir/pairing.cpp.o.d"
  "CMakeFiles/ecost_core.dir/profiling.cpp.o"
  "CMakeFiles/ecost_core.dir/profiling.cpp.o.d"
  "CMakeFiles/ecost_core.dir/stp.cpp.o"
  "CMakeFiles/ecost_core.dir/stp.cpp.o.d"
  "CMakeFiles/ecost_core.dir/wait_queue.cpp.o"
  "CMakeFiles/ecost_core.dir/wait_queue.cpp.o.d"
  "libecost_core.a"
  "libecost_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecost_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
