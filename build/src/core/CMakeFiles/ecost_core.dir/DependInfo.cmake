
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/ecost_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/ecost_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/cluster_engine.cpp" "src/core/CMakeFiles/ecost_core.dir/cluster_engine.cpp.o" "gcc" "src/core/CMakeFiles/ecost_core.dir/cluster_engine.cpp.o.d"
  "/root/repo/src/core/config_db.cpp" "src/core/CMakeFiles/ecost_core.dir/config_db.cpp.o" "gcc" "src/core/CMakeFiles/ecost_core.dir/config_db.cpp.o.d"
  "/root/repo/src/core/dataset_builder.cpp" "src/core/CMakeFiles/ecost_core.dir/dataset_builder.cpp.o" "gcc" "src/core/CMakeFiles/ecost_core.dir/dataset_builder.cpp.o.d"
  "/root/repo/src/core/db_io.cpp" "src/core/CMakeFiles/ecost_core.dir/db_io.cpp.o" "gcc" "src/core/CMakeFiles/ecost_core.dir/db_io.cpp.o.d"
  "/root/repo/src/core/ecost_dispatcher.cpp" "src/core/CMakeFiles/ecost_core.dir/ecost_dispatcher.cpp.o" "gcc" "src/core/CMakeFiles/ecost_core.dir/ecost_dispatcher.cpp.o.d"
  "/root/repo/src/core/mapping_policies.cpp" "src/core/CMakeFiles/ecost_core.dir/mapping_policies.cpp.o" "gcc" "src/core/CMakeFiles/ecost_core.dir/mapping_policies.cpp.o.d"
  "/root/repo/src/core/pairing.cpp" "src/core/CMakeFiles/ecost_core.dir/pairing.cpp.o" "gcc" "src/core/CMakeFiles/ecost_core.dir/pairing.cpp.o.d"
  "/root/repo/src/core/profiling.cpp" "src/core/CMakeFiles/ecost_core.dir/profiling.cpp.o" "gcc" "src/core/CMakeFiles/ecost_core.dir/profiling.cpp.o.d"
  "/root/repo/src/core/stp.cpp" "src/core/CMakeFiles/ecost_core.dir/stp.cpp.o" "gcc" "src/core/CMakeFiles/ecost_core.dir/stp.cpp.o.d"
  "/root/repo/src/core/wait_queue.cpp" "src/core/CMakeFiles/ecost_core.dir/wait_queue.cpp.o" "gcc" "src/core/CMakeFiles/ecost_core.dir/wait_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/ecost_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmon/CMakeFiles/ecost_perfmon.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ecost_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/ecost_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ecost_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/ecost_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecost_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
