# Empty compiler generated dependencies file for ecost_core.
# This may be replaced when dependencies are built.
