# Empty compiler generated dependencies file for tab2_stp_error.
# This may be replaced when dependencies are built.
