file(REMOVE_RECURSE
  "CMakeFiles/tab2_stp_error.dir/tab2_stp_error.cpp.o"
  "CMakeFiles/tab2_stp_error.dir/tab2_stp_error.cpp.o.d"
  "tab2_stp_error"
  "tab2_stp_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_stp_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
