file(REMOVE_RECURSE
  "CMakeFiles/tab3_scenarios.dir/tab3_scenarios.cpp.o"
  "CMakeFiles/tab3_scenarios.dir/tab3_scenarios.cpp.o.d"
  "tab3_scenarios"
  "tab3_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
