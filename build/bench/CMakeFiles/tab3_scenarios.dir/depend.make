# Empty dependencies file for tab3_scenarios.
# This may be replaced when dependencies are built.
