file(REMOVE_RECURSE
  "CMakeFiles/ext_forest.dir/ext_forest.cpp.o"
  "CMakeFiles/ext_forest.dir/ext_forest.cpp.o.d"
  "ext_forest"
  "ext_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
