# Empty compiler generated dependencies file for ext_forest.
# This may be replaced when dependencies are built.
