file(REMOVE_RECURSE
  "CMakeFiles/ablation_misclassification.dir/ablation_misclassification.cpp.o"
  "CMakeFiles/ablation_misclassification.dir/ablation_misclassification.cpp.o.d"
  "ablation_misclassification"
  "ablation_misclassification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_misclassification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
