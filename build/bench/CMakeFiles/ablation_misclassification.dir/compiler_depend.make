# Empty compiler generated dependencies file for ablation_misclassification.
# This may be replaced when dependencies are built.
