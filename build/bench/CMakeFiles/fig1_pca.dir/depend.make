# Empty dependencies file for fig1_pca.
# This may be replaced when dependencies are built.
