file(REMOVE_RECURSE
  "CMakeFiles/fig1_pca.dir/fig1_pca.cpp.o"
  "CMakeFiles/fig1_pca.dir/fig1_pca.cpp.o.d"
  "fig1_pca"
  "fig1_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
