file(REMOVE_RECURSE
  "CMakeFiles/fig3_colao_ilao.dir/fig3_colao_ilao.cpp.o"
  "CMakeFiles/fig3_colao_ilao.dir/fig3_colao_ilao.cpp.o.d"
  "fig3_colao_ilao"
  "fig3_colao_ilao.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_colao_ilao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
