# Empty dependencies file for fig3_colao_ilao.
# This may be replaced when dependencies are built.
