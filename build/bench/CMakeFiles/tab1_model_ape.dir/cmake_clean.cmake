file(REMOVE_RECURSE
  "CMakeFiles/tab1_model_ape.dir/tab1_model_ape.cpp.o"
  "CMakeFiles/tab1_model_ape.dir/tab1_model_ape.cpp.o.d"
  "tab1_model_ape"
  "tab1_model_ape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_model_ape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
