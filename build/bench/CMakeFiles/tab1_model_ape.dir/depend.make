# Empty dependencies file for tab1_model_ape.
# This may be replaced when dependencies are built.
