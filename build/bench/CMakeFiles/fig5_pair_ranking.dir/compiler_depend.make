# Empty compiler generated dependencies file for fig5_pair_ranking.
# This may be replaced when dependencies are built.
