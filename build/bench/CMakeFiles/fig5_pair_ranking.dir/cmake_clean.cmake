file(REMOVE_RECURSE
  "CMakeFiles/fig5_pair_ranking.dir/fig5_pair_ranking.cpp.o"
  "CMakeFiles/fig5_pair_ranking.dir/fig5_pair_ranking.cpp.o.d"
  "fig5_pair_ranking"
  "fig5_pair_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pair_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
