file(REMOVE_RECURSE
  "CMakeFiles/fig2_tuning.dir/fig2_tuning.cpp.o"
  "CMakeFiles/fig2_tuning.dir/fig2_tuning.cpp.o.d"
  "fig2_tuning"
  "fig2_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
