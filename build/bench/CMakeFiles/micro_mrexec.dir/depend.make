# Empty dependencies file for micro_mrexec.
# This may be replaced when dependencies are built.
