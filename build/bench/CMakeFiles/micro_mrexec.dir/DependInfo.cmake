
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_mrexec.cpp" "bench/CMakeFiles/micro_mrexec.dir/micro_mrexec.cpp.o" "gcc" "bench/CMakeFiles/micro_mrexec.dir/micro_mrexec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecost_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/ecost_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ecost_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmon/CMakeFiles/ecost_perfmon.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ecost_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/ecost_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/mrexec/CMakeFiles/ecost_mrexec.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/ecost_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecost_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
