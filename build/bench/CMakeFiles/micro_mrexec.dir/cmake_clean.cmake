file(REMOVE_RECURSE
  "CMakeFiles/micro_mrexec.dir/micro_mrexec.cpp.o"
  "CMakeFiles/micro_mrexec.dir/micro_mrexec.cpp.o.d"
  "micro_mrexec"
  "micro_mrexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mrexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
