# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/hdfs_tests[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_tests[1]_include.cmake")
include("/root/repo/build/tests/workloads_tests[1]_include.cmake")
include("/root/repo/build/tests/perfmon_tests[1]_include.cmake")
include("/root/repo/build/tests/ml_tests[1]_include.cmake")
include("/root/repo/build/tests/tuning_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/mrexec_tests[1]_include.cmake")
