# Empty dependencies file for mrexec_tests.
# This may be replaced when dependencies are built.
