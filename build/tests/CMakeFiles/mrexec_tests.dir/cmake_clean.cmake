file(REMOVE_RECURSE
  "CMakeFiles/mrexec_tests.dir/mrexec/engine_test.cpp.o"
  "CMakeFiles/mrexec_tests.dir/mrexec/engine_test.cpp.o.d"
  "mrexec_tests"
  "mrexec_tests.pdb"
  "mrexec_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrexec_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
