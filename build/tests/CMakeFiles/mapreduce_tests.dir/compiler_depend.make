# Empty compiler generated dependencies file for mapreduce_tests.
# This may be replaced when dependencies are built.
