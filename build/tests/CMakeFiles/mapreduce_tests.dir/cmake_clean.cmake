file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_tests.dir/mapreduce/env_solver_test.cpp.o"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/env_solver_test.cpp.o.d"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/evaluator_properties_test.cpp.o"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/evaluator_properties_test.cpp.o.d"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/node_evaluator_test.cpp.o"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/node_evaluator_test.cpp.o.d"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/node_runner_test.cpp.o"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/node_runner_test.cpp.o.d"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/task_model_test.cpp.o"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/task_model_test.cpp.o.d"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/wave_model_test.cpp.o"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/wave_model_test.cpp.o.d"
  "mapreduce_tests"
  "mapreduce_tests.pdb"
  "mapreduce_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
