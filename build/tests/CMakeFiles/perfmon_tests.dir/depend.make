# Empty dependencies file for perfmon_tests.
# This may be replaced when dependencies are built.
