file(REMOVE_RECURSE
  "CMakeFiles/perfmon_tests.dir/perfmon/feature_vector_test.cpp.o"
  "CMakeFiles/perfmon_tests.dir/perfmon/feature_vector_test.cpp.o.d"
  "CMakeFiles/perfmon_tests.dir/perfmon/meters_test.cpp.o"
  "CMakeFiles/perfmon_tests.dir/perfmon/meters_test.cpp.o.d"
  "CMakeFiles/perfmon_tests.dir/perfmon/perf_sampler_test.cpp.o"
  "CMakeFiles/perfmon_tests.dir/perfmon/perf_sampler_test.cpp.o.d"
  "perfmon_tests"
  "perfmon_tests.pdb"
  "perfmon_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfmon_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
