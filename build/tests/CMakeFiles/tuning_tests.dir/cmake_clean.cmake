file(REMOVE_RECURSE
  "CMakeFiles/tuning_tests.dir/tuning/brute_force_test.cpp.o"
  "CMakeFiles/tuning_tests.dir/tuning/brute_force_test.cpp.o.d"
  "CMakeFiles/tuning_tests.dir/tuning/config_space_test.cpp.o"
  "CMakeFiles/tuning_tests.dir/tuning/config_space_test.cpp.o.d"
  "tuning_tests"
  "tuning_tests.pdb"
  "tuning_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
