# Empty dependencies file for tuning_tests.
# This may be replaced when dependencies are built.
