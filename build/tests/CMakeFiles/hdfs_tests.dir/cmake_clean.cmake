file(REMOVE_RECURSE
  "CMakeFiles/hdfs_tests.dir/hdfs/block_planner_test.cpp.o"
  "CMakeFiles/hdfs_tests.dir/hdfs/block_planner_test.cpp.o.d"
  "CMakeFiles/hdfs_tests.dir/hdfs/page_cache_test.cpp.o"
  "CMakeFiles/hdfs_tests.dir/hdfs/page_cache_test.cpp.o.d"
  "hdfs_tests"
  "hdfs_tests.pdb"
  "hdfs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdfs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
