# Empty dependencies file for hdfs_tests.
# This may be replaced when dependencies are built.
