file(REMOVE_RECURSE
  "CMakeFiles/ml_tests.dir/ml/dataset_scaler_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/dataset_scaler_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/hierarchical_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/hierarchical_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/knn_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/knn_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/linalg_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/linalg_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/linear_regression_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/linear_regression_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/lookup_table_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/lookup_table_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/matrix_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/matrix_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/metrics_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/metrics_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/mlp_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/mlp_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/pca_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/pca_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/random_forest_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/random_forest_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/reptree_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/reptree_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/serialize_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/serialize_test.cpp.o.d"
  "ml_tests"
  "ml_tests.pdb"
  "ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
