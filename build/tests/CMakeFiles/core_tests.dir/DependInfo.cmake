
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/classifier_test.cpp" "tests/CMakeFiles/core_tests.dir/core/classifier_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/classifier_test.cpp.o.d"
  "/root/repo/tests/core/cluster_engine_test.cpp" "tests/CMakeFiles/core_tests.dir/core/cluster_engine_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/cluster_engine_test.cpp.o.d"
  "/root/repo/tests/core/config_db_test.cpp" "tests/CMakeFiles/core_tests.dir/core/config_db_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/config_db_test.cpp.o.d"
  "/root/repo/tests/core/db_io_test.cpp" "tests/CMakeFiles/core_tests.dir/core/db_io_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/db_io_test.cpp.o.d"
  "/root/repo/tests/core/ecost_dispatcher_test.cpp" "tests/CMakeFiles/core_tests.dir/core/ecost_dispatcher_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ecost_dispatcher_test.cpp.o.d"
  "/root/repo/tests/core/mapping_policies_test.cpp" "tests/CMakeFiles/core_tests.dir/core/mapping_policies_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/mapping_policies_test.cpp.o.d"
  "/root/repo/tests/core/pairing_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pairing_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pairing_test.cpp.o.d"
  "/root/repo/tests/core/stp_test.cpp" "tests/CMakeFiles/core_tests.dir/core/stp_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/stp_test.cpp.o.d"
  "/root/repo/tests/core/wait_queue_test.cpp" "tests/CMakeFiles/core_tests.dir/core/wait_queue_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/wait_queue_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecost_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/ecost_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ecost_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmon/CMakeFiles/ecost_perfmon.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ecost_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/ecost_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/ecost_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecost_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
