file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/classifier_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/classifier_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/cluster_engine_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/cluster_engine_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/config_db_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/config_db_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/db_io_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/db_io_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/ecost_dispatcher_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/ecost_dispatcher_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/mapping_policies_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/mapping_policies_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pairing_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pairing_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/stp_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/stp_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/wait_queue_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/wait_queue_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
