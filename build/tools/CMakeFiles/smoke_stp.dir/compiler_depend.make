# Empty compiler generated dependencies file for smoke_stp.
# This may be replaced when dependencies are built.
