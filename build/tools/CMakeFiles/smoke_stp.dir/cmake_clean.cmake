file(REMOVE_RECURSE
  "CMakeFiles/smoke_stp.dir/smoke_stp.cpp.o"
  "CMakeFiles/smoke_stp.dir/smoke_stp.cpp.o.d"
  "smoke_stp"
  "smoke_stp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_stp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
