file(REMOVE_RECURSE
  "CMakeFiles/ecostctl.dir/ecostctl.cpp.o"
  "CMakeFiles/ecostctl.dir/ecostctl.cpp.o.d"
  "ecostctl"
  "ecostctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecostctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
