# Empty compiler generated dependencies file for ecostctl.
# This may be replaced when dependencies are built.
